// Package analysis is a dependency-free skeleton of the go/analysis
// vocabulary — Analyzer, Pass, Finding — plus the repo's analyzer suite.
// The build environment bakes in no golang.org/x/tools, so the framework
// is rebuilt on the stdlib go/ast + go/types surface; cmd/sagnnlint wraps
// it in the `go vet -vettool` unit-checker protocol so the suite runs
// exactly like an upstream vet analyzer would.
//
// Findings can be suppressed with staticcheck-style directives:
//
//	//lint:ignore <check>[,<check>...] <reason>       same or next line
//	//lint:file-ignore <check>[,<check>...] <reason>  whole file
//
// A reason is mandatory — a directive without one is itself reported.
// Findings in _test.go files are dropped: the invariants the suite
// enforces (zero-alloc steady state, typed errors over panics, charged
// phases, centralized backoff) are production-path contracts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in //lint:ignore directives.
	Name string
	// Doc states the invariant the check enforces.
	Doc string
	// Run reports findings on the pass.
	Run func(*Pass)
}

// All is the repo's analyzer suite in deterministic order.
var All = []*Analyzer{Commphase, Nopanic, Nosleep, Steadyalloc}

// A Pass connects one Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic: which check fired, where, and why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies analyzers to one type-checked package and returns the
// surviving findings sorted by position: ignore directives are honored,
// malformed directives are themselves reported, and _test.go findings are
// dropped.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		p := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(f Finding) { raw = append(raw, f) },
		}
		a.Run(p)
	}
	ig := collectIgnores(fset, files)
	var out []Finding
	for _, f := range ig.malformed {
		if !strings.HasSuffix(f.Pos.Filename, "_test.go") {
			out = append(out, f)
		}
	}
	for _, f := range raw {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") || ig.suppressed(f) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreSet is the parsed //lint: directives of one package.
type ignoreSet struct {
	// lines maps filename to line number to the checks ignored on that
	// line: a directive trailing code covers its own line; a directive on
	// a line of its own covers the line below it.
	lines map[string]map[int][]string
	// fileWide maps filename to checks ignored across the whole file.
	fileWide  map[string][]string
	malformed []Finding
}

// codeStarts records, per file, the earliest position of a non-comment
// node starting on each line — how a directive tells "trailing code" from
// "line of its own".
func codeStarts(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	starts := make(map[int]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		line := fset.Position(n.Pos()).Line
		if p, ok := starts[line]; !ok || n.Pos() < p {
			starts[line] = n.Pos()
		}
		return true
	})
	return starts
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{
		lines:    make(map[string]map[int][]string),
		fileWide: make(map[string][]string),
	}
	for _, f := range files {
		starts := codeStarts(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:file-ignore"):
					text, fileWide = strings.TrimPrefix(text, "lint:file-ignore"), true
				case strings.HasPrefix(text, "lint:ignore"):
					text = strings.TrimPrefix(text, "lint:ignore")
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed lint directive: need checks and a reason",
					})
					continue
				}
				checks := strings.Split(fields[0], ",")
				if fileWide {
					ig.fileWide[pos.Filename] = append(ig.fileWide[pos.Filename], checks...)
					continue
				}
				covered := pos.Line + 1
				if p, ok := starts[pos.Line]; ok && p < c.Pos() {
					covered = pos.Line // trailing directive covers its own line
				}
				if ig.lines[pos.Filename] == nil {
					ig.lines[pos.Filename] = make(map[int][]string)
				}
				ig.lines[pos.Filename][covered] = append(ig.lines[pos.Filename][covered], checks...)
			}
		}
	}
	return ig
}

func matches(checks []string, analyzer string) bool {
	for _, c := range checks {
		if c == analyzer || c == "*" {
			return true
		}
	}
	return false
}

func (ig *ignoreSet) suppressed(f Finding) bool {
	if matches(ig.fileWide[f.Pos.Filename], f.Analyzer) {
		return true
	}
	return matches(ig.lines[f.Pos.Filename][f.Pos.Line], f.Analyzer)
}
