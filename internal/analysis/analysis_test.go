package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOn type-checks one source file as package path (so the path-scoped
// analyzers see the package they believe they are in) and runs analyzers.
func runOn(t *testing.T, path, filename, src string, as []*Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return RunPackage(fset, []*ast.File{f}, pkg, info, as)
}

// countMsg returns how many findings contain the substring.
func countMsg(fs []Finding, sub string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f.Message, sub) {
			n++
		}
	}
	return n
}

func TestSteadyalloc(t *testing.T) {
	src := `package p

import "fmt"

type buf struct{ data []float64 }

// CopyInto is steady state by naming convention.
func (b *buf) CopyInto(dst []float64) {
	if len(dst) != len(b.data) {
		// Validation paths may allocate their diagnostics.
		panic(fmt.Sprintf("bad size %d", len(dst)))
	}
	if len(dst) == 0 {
		fmt.Sprintf("allowed: guard returns") // skipped: body terminates
		return
	}
	tmp := make([]float64, 4)          // finding: make
	tmp = append(tmp, 1)               // finding: append
	_ = fmt.Sprintf("x %d", len(tmp))  // finding: fmt.Sprintf
	f := func() {}                     // finding: closure
	f()
	go f()                             // finding: go
	q := &buf{}                        // finding: &composite
	_ = q
	s := []int{1, 2}                   // finding: slice literal
	_ = s
	copy(dst, b.data)
}

//sagnn:steadystate hot path despite the name.
func hot(dst []float64) {
	_ = fmt.Sprint(len(dst)) // finding: fmt.Sprint
}

// cold may allocate freely.
func cold() []float64 { return make([]float64, 8) }
`
	fs := runOn(t, "p", "src.go", src, []*Analyzer{Steadyalloc})
	for want, n := range map[string]int{
		"allocating builtin make":   1,
		"allocating builtin append": 1,
		"fmt.Sprintf":               1,
		"closure":                   1,
		"goroutine":                 1,
		"address of a composite":    1,
		"slice or map literal":      1,
		"fmt.Sprint\n":              0, // checked via total below
	} {
		if want == "fmt.Sprint\n" {
			continue
		}
		if got := countMsg(fs, want); got != n {
			t.Errorf("%q: got %d findings, want %d\nall: %v", want, got, n, fs)
		}
	}
	if got := countMsg(fs, "steady-state hot"); got != 1 {
		t.Errorf("sagnn:steadystate directive: got %d findings, want 1\nall: %v", got, fs)
	}
	if got := countMsg(fs, "cold"); got != 0 {
		t.Errorf("cold function flagged: %v", fs)
	}
	if got := countMsg(fs, "guard returns"); got != 0 {
		t.Errorf("terminating guard body not exempted: %v", fs)
	}
}

func TestNopanic(t *testing.T) {
	src := `package comm

import "fmt"

func undocumented(x int) {
	if x < 0 {
		panic(fmt.Sprintf("bad %d", x)) // finding
	}
}

// documented panics when x is negative: legacy misuse wrapper.
func documented(x int) {
	if x < 0 {
		panic("bad")
	}
}

func rethrow() {
	if p := recover(); p != nil {
		panic(p) // re-panic of a recovered value: allowed
	}
}
`
	fs := runOn(t, "sagnn/internal/comm", "src.go", src, []*Analyzer{Nopanic})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "undocumented") {
		t.Errorf("want exactly the undocumented panic flagged, got %v", fs)
	}
	// The same source outside the scoped packages is clean.
	if fs := runOn(t, "sagnn/internal/gcn", "src.go", strings.Replace(src, "package comm", "package gcn", 1), []*Analyzer{Nopanic}); len(fs) != 0 {
		t.Errorf("nopanic fired outside its package scope: %v", fs)
	}
}

func TestCommphase(t *testing.T) {
	src := `package p

type rank struct{}

func (r *rank) Send(dst int, phase string) {}

func charge(phase string, sec float64) {}

const unnamed = ""

func use(r *rank) {
	r.Send(0, "")          // finding
	r.Send(1, unnamed)     // finding: named constant, still empty
	r.Send(2, "bcast")     // ok
	charge("", 1.0)        // finding
	charge("local", 1.0)   // ok
	s := ""
	charge(s, 1.0)         // ok: not a constant (runtime value)
}
`
	fs := runOn(t, "p", "src.go", src, []*Analyzer{Commphase})
	if len(fs) != 3 {
		t.Errorf("want 3 empty-phase findings, got %v", fs)
	}
}

func TestNosleep(t *testing.T) {
	src := `package p

import "time"

func wait() {
	time.Sleep(time.Second) // finding
	_ = time.Now()
}
`
	fs := runOn(t, "p", "src.go", src, []*Analyzer{Nosleep})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "time.Sleep") {
		t.Errorf("want the sleep flagged, got %v", fs)
	}
	if fs := runOn(t, "sagnn/internal/retry", "src.go", src, []*Analyzer{Nosleep}); len(fs) != 0 {
		t.Errorf("nosleep fired inside the retry package: %v", fs)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package p

import "time"

func a() {
	//lint:ignore nosleep next-line suppression works
	time.Sleep(time.Second)
	time.Sleep(time.Second) //lint:ignore nosleep same-line suppression works
	time.Sleep(time.Second) // finding: no directive
	//lint:ignore nosleep
	time.Sleep(time.Second) // finding survives + malformed directive finding
}
`
	fs := runOn(t, "p", "src.go", src, []*Analyzer{Nosleep})
	if got := countMsg(fs, "time.Sleep"); got != 2 {
		t.Errorf("want 2 surviving sleep findings, got %v", fs)
	}
	if got := countMsg(fs, "malformed"); got != 1 {
		t.Errorf("want 1 malformed-directive finding, got %v", fs)
	}

	fileIgnore := `package p

//lint:file-ignore nosleep this file simulates wall-clock time

import "time"

func a() { time.Sleep(time.Second) }
func b() { time.Sleep(time.Second) }
`
	if fs := runOn(t, "p", "src.go", fileIgnore, []*Analyzer{Nosleep}); len(fs) != 0 {
		t.Errorf("file-ignore did not suppress: %v", fs)
	}
}

func TestTestFilesExempt(t *testing.T) {
	src := `package p

import "time"

func helper() { time.Sleep(time.Millisecond) }
`
	if fs := runOn(t, "p", "src_test.go", src, []*Analyzer{Nosleep}); len(fs) != 0 {
		t.Errorf("findings in _test.go files must be dropped, got %v", fs)
	}
}
