package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Commphase enforces ledger attribution: the machine-time ledger drops
// charges carried by an empty phase tag, so passing a constant "" to a
// `phase string` parameter silently un-accounts communication or compute
// time. The overlap executor does this on purpose at a handful of sites
// (it pre-settles each stage's charges), and those carry lint:ignore
// directives stating so; everywhere else an empty phase is a lost charge.
var Commphase = &Analyzer{
	Name: "commphase",
	Doc: "flag constant empty strings passed to `phase string` parameters; " +
		"an empty phase tag suppresses the machine-time charge",
	Run: runCommphase,
}

func runCommphase(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || tv.IsType() {
				return true // conversion, not a call
			}
			sig, ok := tv.Type.(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				if i >= sig.Params().Len() {
					break
				}
				param := sig.Params().At(i)
				if sig.Variadic() && i == sig.Params().Len()-1 {
					break // a variadic tail is never the phase parameter
				}
				if param.Name() != "phase" {
					continue
				}
				if basic, ok := param.Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
					continue
				}
				av, ok := p.Info.Types[arg]
				if !ok || av.Value == nil || av.Value.Kind() != constant.String {
					continue
				}
				if constant.StringVal(av.Value) == "" {
					p.Reportf(arg.Pos(), "empty phase tag suppresses the machine-time charge; name the phase (or lint:ignore with the reason the charge is settled elsewhere)")
				}
			}
			return true
		})
	}
}
