package comm

// bufPool is a per-world free list of float payload buffers. Send packs into
// a pooled buffer, the matching RecvInto (or an explicit PutFloats) returns
// it, so steady-state training reuses a fixed set of transport buffers
// instead of allocating and GC-ing one per message.
//
// Ownership discipline:
//
//   - Send copies the caller's payload into a pooled buffer; the receiver
//     owns that buffer once Recv returns it, and may keep it forever (it is
//     simply garbage collected) or hand it back with PutFloats.
//   - SendOwned transfers the caller's buffer itself — the caller must have
//     obtained it from GetFloats and must not touch it afterwards.
//   - RecvInto copies the payload into a caller-supplied workspace and
//     recycles the transport buffer immediately — the zero-allocation path.
//
// The free list is a buffered channel: channel operations do not allocate,
// so recycling is itself allocation-free (unlike sync.Pool, which boxes the
// slice header on every Put). Capacities are rounded up to powers of two so
// recycled buffers keep matching requests of similar size.
type bufPool struct {
	ch chan []float64
}

func newBufPool() bufPool {
	return bufPool{ch: make(chan []float64, 1024)}
}

// roundUpPow2 returns the smallest power of two ≥ n (min 64 to avoid
// churning tiny buffers).
func roundUpPow2(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// get returns a length-n buffer with unspecified contents. It tries a few
// pooled buffers before allocating; too-small candidates go back to the
// FIFO's tail so they stay available for smaller requests.
func (p *bufPool) get(n int) []float64 {
	for attempt := 0; attempt < 4; attempt++ {
		select {
		case b := <-p.ch:
			if cap(b) >= n {
				return b[:n]
			}
			p.put(b)
		default:
			attempt = 4
		}
	}
	return make([]float64, n, roundUpPow2(n))
}

// put recycles a buffer; drops it if the free list is full.
func (p *bufPool) put(b []float64) {
	if cap(b) == 0 {
		return
	}
	select {
	case p.ch <- b[:0]:
	default:
	}
}

// GetFloats returns a length-n pooled buffer with unspecified contents,
// intended as a SendOwned payload or a scratch workspace.
func (r *Rank) GetFloats(n int) []float64 { return r.w.pool.get(n) }

// PutFloats recycles a buffer previously obtained from GetFloats, Recv, or
// a collective's transport path. The caller must not use it afterwards.
func (r *Rank) PutFloats(b []float64) { r.w.pool.put(b) }
