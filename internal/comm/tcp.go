package comm

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"sagnn/internal/machine"
	"sagnn/internal/retry"
)

// NewWorldTCP creates a World whose communication primitives run over
// persistent framed TCP connections: one OS process per world rank, this
// process hosting rank self. addrs is the static peer list — addrs[i] is the
// listen address of rank i — shared verbatim by every process (the
// rendezvous). len(addrs) is the world size.
//
// Rendezvous builds the full mesh: rank i listens on addrs[i], dials every
// lower rank (with capped exponential backoff, so processes may start in any
// order), and accepts from every higher rank; a hello frame identifies the
// dialer. Connections are persistent, TCP_NODELAY, with per-peer coalescing
// writers and decoding readers (transport.go). Setup is bounded by
// rendezvousTimeout; a missing peer returns an error rather than hanging.
//
// The returned World runs exactly one rank goroutine per Run (the hosted
// rank); logical volume accounting and modeled α–β ledger charges use the
// same formulas as the simulated backend, so the two transports agree bit
// for bit on every ledger. Fault injection targets the hosted rank only, and
// unlike the simulated backend an aborted TCP world is not reusable: peers
// are not resynchronized after an abort. Call Close when done.
func NewWorldTCP(self int, addrs []string, params machine.Params) (*World, error) {
	p := len(addrs)
	if p <= 0 {
		return nil, fmt.Errorf("comm: NewWorldTCP needs a non-empty peer list")
	}
	if self < 0 || self >= p {
		return nil, fmt.Errorf("comm: rank %d outside peer list of %d", self, p)
	}
	w := NewWorld(p, params)
	nw := &netWorld{w: w, self: self, addrs: append([]string(nil), addrs...), peers: make([]*netPeer, p)}
	nw.inboxes = make([][2]inbox, p)
	for i := range nw.inboxes {
		for l := range nw.inboxes[i] {
			nw.inboxes[i][l].sig = make(chan struct{}, 1)
		}
	}
	if p > 1 {
		if err := nw.rendezvous(); err != nil {
			nw.teardown()
			return nil, err
		}
		nw.byeWG.Add(p - 1)
		for _, pr := range nw.peers {
			if pr == nil {
				continue
			}
			go nw.reader(pr)
			go nw.writer(pr)
		}
	}
	w.net = nw
	w.hosted = []int{self}
	return w, nil
}

// rendezvous listens on our address and establishes one connection per peer:
// dial every lower rank, accept from every higher rank.
func (nw *netWorld) rendezvous() error {
	ln, err := net.Listen("tcp", nw.addrs[nw.self])
	if err != nil {
		return fmt.Errorf("comm: rank %d listen %s: %w", nw.self, nw.addrs[nw.self], err)
	}
	nw.ln = ln
	ctx, cancel := context.WithTimeout(context.Background(), rendezvousTimeout)
	defer cancel()
	deadline, _ := ctx.Deadline()

	type arrival struct {
		rank int
		conn net.Conn
		err  error
	}
	p := len(nw.addrs)
	ch := make(chan arrival, p)
	nAccept := p - 1 - nw.self
	if nAccept > 0 {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		go func() {
			for k := 0; k < nAccept; k++ {
				conn, err := ln.Accept()
				if err != nil {
					ch <- arrival{err: fmt.Errorf("accept: %w", err)}
					return
				}
				go func(conn net.Conn) {
					rank, err := readHello(conn, deadline)
					ch <- arrival{rank: rank, conn: conn, err: err}
				}(conn)
			}
		}()
	}
	for j := 0; j < nw.self; j++ {
		go func(j int) {
			conn, err := dialPeer(ctx, nw.addrs[j], nw.self)
			ch <- arrival{rank: j, conn: conn, err: err}
		}(j)
	}
	for have := 0; have < p-1; have++ {
		var a arrival
		select {
		case a = <-ch:
		case <-ctx.Done():
			a = arrival{err: ctx.Err()}
		}
		if a.err == nil && (a.rank < 0 || a.rank >= p || a.rank == nw.self || nw.peers[a.rank] != nil) {
			a.conn.Close()
			a.err = fmt.Errorf("unexpected hello from rank %d", a.rank)
		}
		if a.err != nil {
			return fmt.Errorf("comm: rank %d rendezvous: %w", nw.self, a.err)
		}
		if tc, ok := a.conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		nw.peers[a.rank] = &netPeer{rank: a.rank, conn: a.conn, q: newFrameQueue(), wdone: make(chan struct{})}
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	return nil
}

// dialPeer connects to a peer's listen address, retrying with capped
// exponential backoff until ctx expires (the peer may not have started yet),
// and sends the hello frame identifying our rank.
func dialPeer(ctx context.Context, addr string, self int) (net.Conn, error) {
	d := net.Dialer{Timeout: 2 * time.Second}
	for attempt := 1; ; attempt++ {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			hello := make([]byte, frameHeaderLen)
			putHeader(hello, frameHello, laneP2P, self, 0, 0)
			if _, werr := conn.Write(hello); werr == nil {
				return conn, nil
			}
			conn.Close()
		}
		if serr := retry.Sleep(ctx, 50*time.Millisecond, attempt); serr != nil {
			return nil, fmt.Errorf("dial %s: %w", addr, serr)
		}
	}
}

// readHello reads and validates the dialer's hello frame, returning its rank.
func readHello(conn net.Conn, deadline time.Time) (int, error) {
	conn.SetReadDeadline(deadline)
	defer conn.SetReadDeadline(time.Time{})
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return -1, fmt.Errorf("hello: %w", err)
	}
	kind, _, src, _, _ := parseHeader(hdr)
	if kind != frameHello {
		return -1, fmt.Errorf("hello: unexpected frame kind %d", kind)
	}
	return src, nil
}

// Close shuts down the transport: for the TCP backend it announces an
// orderly goodbye to every peer, waits (bounded) so closing sockets cannot
// abort a peer still mid-run, flushes and stops the writers, and closes all
// connections and the listener. A no-op for the in-process backend.
func (w *World) Close() error {
	if w.net == nil {
		return nil
	}
	return w.net.close()
}

// Transport returns the backend name: "sim" for the in-process simulated
// communicator, "tcp" for the multi-process framed-TCP backend.
func (w *World) Transport() string {
	if w.net == nil {
		return "sim"
	}
	return "tcp"
}

// LocalRank returns the lowest world rank hosted by this process: 0 for the
// in-process backend (which hosts every rank), the process's own rank for
// TCP. "Print once" logic gates on LocalRank instead of rank 0 so it stays
// correct across transports.
func (w *World) LocalRank() int { return w.hosted[0] }

// Hosts reports whether the given world rank runs inside this process.
func (w *World) Hosts(rank int) bool { return w.net == nil || rank == w.net.self }

// Hosted returns the world ranks this process runs, in ascending order.
func (w *World) Hosted() []int { return append([]int(nil), w.hosted...) }
