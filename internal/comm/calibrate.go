package comm

import (
	"fmt"
	"time"

	"sagnn/internal/machine"
)

// Calibration is the result of the α–β fitting probe: the fitted postal
// parameters (in seconds and seconds per logical byte — directly assignable
// to machine.Params) and the per-size samples they were fitted from. On a
// TCP world every process returns the same Alpha/Beta bit for bit: rank 0's
// fit is authoritative and is broadcast to all ranks, so every process's
// CostModel — and therefore every process's AlgorithmAuto decision — agrees.
type Calibration struct {
	Alpha float64
	Beta  float64
	// Samples are this process's own measurements (one-way seconds per
	// transfer size). On TCP only the rank-0 process measures; other
	// processes carry zero Seconds and rely on the broadcast fit.
	Samples []machine.FitSample
}

// Apply returns p with Alpha and Beta replaced by the fitted values.
func (c Calibration) Apply(p machine.Params) machine.Params {
	p.Alpha = c.Alpha
	p.Beta = c.Beta
	return p
}

// DefaultCalibrationSizes is the standard sweep: payload element counts from
// latency-dominated (1 KiB logical) to bandwidth-dominated (1 MiB logical).
func DefaultCalibrationSizes() []int {
	return []int{256, 1024, 4096, 16384, 65536, 262144}
}

// Calibrate runs the ping-pong latency/bandwidth sweep between ranks 0 and 1
// and fits α and β from the measured transfers (machine.FitAlphaBeta). On
// the simulated backend the "measurement" is the exact modeled charge read
// off the ledger, so the fit recovers the configured machine parameters —
// the golden test pinning the procedure itself. On the TCP backend it is
// wall-clock RTT/2 at rank 0, producing real localhost (or cross-host)
// parameters in logical-byte units. Collective on a TCP world: every process
// must call it at the same point in its schedule. reps ≤ 0 selects the
// default repetition count.
func Calibrate(w *World, sizes []int, reps int) (Calibration, error) {
	if w.P < 2 {
		return Calibration{}, fmt.Errorf("comm: calibration needs at least 2 ranks, world has %d", w.P)
	}
	if len(sizes) < 2 {
		return Calibration{}, fmt.Errorf("comm: calibration needs at least 2 transfer sizes, got %d", len(sizes))
	}
	if reps <= 0 {
		reps = 10
	}
	samples := make([]machine.FitSample, 0, len(sizes))
	for _, n := range sizes {
		sec, err := w.pingpong(n, reps)
		if err != nil {
			return Calibration{}, err
		}
		samples = append(samples, machine.FitSample{Bytes: int64(n) * machine.BytesPerElem, Seconds: sec})
	}
	// Rank 0's fit is authoritative; other TCP processes have no local
	// measurements and take the broadcast values.
	fitted := make([]float64, 2)
	if w.LocalRank() == 0 {
		alpha, beta, err := machine.FitAlphaBeta(samples)
		if err != nil {
			return Calibration{}, err
		}
		fitted[0], fitted[1] = alpha, beta
	}
	var alpha, beta float64
	err := w.RunErr(func(r *Rank) error {
		dst := []float64{0, 0}
		w.WorldGroup().BcastFloatsInto(r, 0, fitted, dst, "calibrate")
		if r.ID == w.LocalRank() {
			alpha, beta = dst[0], dst[1]
		}
		return nil
	})
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{Alpha: alpha, Beta: beta, Samples: samples}, nil
}

// pingpong measures the mean one-way time of an n-element transfer between
// ranks 0 and 1 over reps round trips: the exact "calibrate"-phase ledger
// delta on the simulated backend, wall-clock RTT/2 at rank 0 on TCP.
func (w *World) pingpong(n, reps int) (float64, error) {
	before := w.Ledger.Snapshot()
	var rtt time.Duration
	err := w.RunErr(func(r *Rank) error {
		if r.ID > 1 {
			return nil
		}
		buf := r.GetFloats(n)
		defer r.PutFloats(buf)
		for i := range buf {
			buf[i] = float64(i)
		}
		if r.ID == 0 {
			start := time.Now()
			for k := 0; k < reps; k++ {
				r.Send(1, tagCalibrate, buf, "calibrate")
				if err := r.TryRecvInto(1, tagCalibrate, buf); err != nil {
					return err
				}
			}
			rtt = time.Since(start)
			return nil
		}
		for k := 0; k < reps; k++ {
			if err := r.TryRecvInto(0, tagCalibrate, buf); err != nil {
				return err
			}
			r.Send(0, tagCalibrate, buf, "calibrate")
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if w.net == nil {
		return w.Ledger.Snapshot().Sub(before).PhaseMax("calibrate") / float64(reps), nil
	}
	return rtt.Seconds() / float64(2*reps), nil
}
