package comm

import (
	"fmt"

	"sagnn/internal/machine"
)

// Message-based collective bodies for the TCP backend. The Group methods in
// group.go branch here when the world carries a netWorld: the slot/barrier
// machinery of the in-process backend assumes every member is a local
// goroutine, while a TCP process hosts exactly one rank, so each collective
// becomes explicit frames on the collective lane. Three invariants keep the
// two backends interchangeable:
//
//   - Determinism: reductions fold contributions in group member order —
//     exactly the order the in-process bodies walk the exchange slots — so
//     floating-point results are bit-identical across transports.
//   - Accounting: volume counters and modeled α–β charges use formula-for-
//     formula the same code as the in-process bodies (a broadcast is one
//     logical tree send even though the root writes g-1 frames); the
//     conformance tests pin ledger equality.
//   - Ordering: each rank enters its collectives in program order with at
//     most one in flight (the Async lookahead contract), so per-pair FIFO on
//     the collective lane is a sufficient match discipline; distinct tags per
//     collective kind turn any violation into ErrTagMismatch.

// netBcastFloats is the wire broadcast: the root sends its payload to every
// other member; everyone charges the modeled tree-broadcast time. A
// mis-sized dst panics, matching the in-process shape contract.
func (g *Group) netBcastFloats(r *Rank, me, root int, data, dst []float64, useDst bool, phase string) []float64 {
	nw := g.w.net
	var src, wire []float64
	if me == root {
		for i := range g.members {
			if i != me {
				nw.sendFloats(g.members[i], laneColl, tagBcast, data)
			}
		}
		src = data
	} else {
		m := nw.recvColl(g.members[root], tagBcast)
		src, wire = m.floats, m.floats
	}
	if useDst {
		if len(dst) != len(src) {
			panic(fmt.Sprintf("comm: bcast dst len %d, payload len %d", len(dst), len(src)))
		}
		copy(dst, src)
		g.w.pool.put(wire)
	} else if wire != nil {
		dst = wire // the decoded wire buffer becomes the caller-owned result
	} else {
		dst = make([]float64, len(src))
		copy(dst, src)
	}
	nBytes := int64(len(src)) * machine.BytesPerElem
	if me == root {
		g.w.stats.addSend(r.ID, nBytes, 1)
	} else {
		g.w.stats.addRecv(r.ID, nBytes)
	}
	r.chargeComm(phase, g.w.Params.BcastTime(nBytes, g.Size()))
	return dst
}

// netAllReduceSum is the wire all-reduce: every member sends its vector to
// every other member and folds the contributions in group member order —
// the same summation order as the in-process slot walk, so results are
// bit-identical. A length mismatch panics, matching the in-process contract.
func (g *Group) netAllReduceSum(r *Rank, me int, data, out []float64, phase string) {
	nw := g.w.net
	for i := range g.members {
		if i != me {
			nw.sendFloats(g.members[i], laneColl, tagAllReduce, data)
		}
	}
	for j := range out {
		out[j] = 0
	}
	for i := range g.members {
		v, wire := data, []float64(nil)
		if i != me {
			m := nw.recvColl(g.members[i], tagAllReduce)
			v, wire = m.floats, m.floats
		}
		if len(v) != len(data) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(v), len(data)))
		}
		for j, x := range v {
			out[j] += x
		}
		g.w.pool.put(wire)
	}
	nBytes := int64(len(data)) * machine.BytesPerElem
	ringVol := nBytes // ring all-reduce moves ~2n bytes; modeled in AllReduceTime
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ringVol, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, ringVol)
	}
	r.chargeComm(phase, g.w.Params.AllReduceTime(nBytes, g.Size()))
}

// netAllGatherFloats is the wire all-gather: every member sends its
// contribution to every other member; results land per contributor in group
// order. Mis-sized caller-supplied workspaces panic, as in-process.
func (g *Group) netAllGatherFloats(r *Rank, me int, data []float64, dst [][]float64, phase string) [][]float64 {
	nw := g.w.net
	for i := range g.members {
		if i != me {
			nw.sendFloats(g.members[i], laneColl, tagAllGather, data)
		}
	}
	alloc := dst == nil
	if alloc {
		dst = make([][]float64, g.Size())
	}
	var total int64
	for i := range g.members {
		v, wire := data, []float64(nil)
		if i != me {
			m := nw.recvColl(g.members[i], tagAllGather)
			v, wire = m.floats, m.floats
		}
		if alloc {
			if wire != nil {
				dst[i] = wire // decoded wire buffer becomes the caller's slice
				wire = nil
			} else {
				dst[i] = append([]float64(nil), v...)
			}
		} else {
			if len(dst[i]) != len(v) {
				panic(fmt.Sprintf("comm: allgather dst[%d] len %d, contribution len %d", i, len(dst[i]), len(v)))
			}
			copy(dst[i], v)
		}
		total += int64(len(v))
		g.w.pool.put(wire)
	}
	totalBytes := total * machine.BytesPerElem
	ownBytes := int64(len(data)) * machine.BytesPerElem
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ownBytes, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, totalBytes-ownBytes)
	}
	r.chargeComm(phase, g.w.Params.AllGatherTime(totalBytes, g.Size()))
	return dst
}

// netAllToAllv is the wire personalized exchange: send[j] travels to member
// j (empty buckets included, so every pair stays frame-aligned); member j's
// contribution lands in recv[j]. Mis-sized buckets panic, as in-process.
func (g *Group) netAllToAllv(r *Rank, me int, send, recv [][]float64, phase string) [][]float64 {
	nw := g.w.net
	for j := range g.members {
		if j != me {
			nw.sendFloats(g.members[j], laneColl, tagAllToAllv, send[j])
		}
	}
	alloc := recv == nil
	if alloc {
		recv = make([][]float64, g.Size())
	}
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		theirs, wire := send[me], []float64(nil)
		if j != me {
			m := nw.recvColl(g.members[j], tagAllToAllv)
			theirs, wire = m.floats, m.floats
		}
		if alloc {
			if wire != nil {
				recv[j] = wire
				wire = nil
			} else {
				recv[j] = append([]float64(nil), theirs...)
			}
		} else {
			if len(recv[j]) != len(theirs) {
				panic(fmt.Sprintf("comm: alltoallv recv[%d] len %d, payload len %d", j, len(recv[j]), len(theirs)))
			}
			copy(recv[j], theirs)
		}
		if j != me {
			recvElems += int64(len(theirs))
			sendElems += int64(len(send[j]))
			if len(theirs) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
		g.w.pool.put(wire)
	}
	sendBytes := sendElems * machine.BytesPerElem
	recvBytes := recvElems * machine.BytesPerElem
	g.w.stats.addSend(r.ID, sendBytes, int64(partners))
	g.w.stats.addRecv(r.ID, recvBytes)
	r.chargeComm(phase, g.w.Params.AllToAllvTime(sendBytes, recvBytes, partners))
	return recv
}

// netAllToAllvInts is netAllToAllv for int payloads (setup-time index
// exchange).
func (g *Group) netAllToAllvInts(r *Rank, me int, send [][]int, phase string) [][]int {
	nw := g.w.net
	for j := range g.members {
		if j != me {
			nw.sendInts(g.members[j], laneColl, tagAllToAllvInts, send[j])
		}
	}
	out := make([][]int, g.Size())
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		var theirs []int
		if j == me {
			theirs = send[me]
			out[j] = append([]int(nil), theirs...)
		} else {
			m := nw.recvColl(g.members[j], tagAllToAllvInts)
			theirs = m.ints
			out[j] = theirs // decoded wire slice becomes the caller's
		}
		if j != me {
			recvElems += int64(len(theirs))
			sendElems += int64(len(send[j]))
			if len(theirs) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
	}
	g.w.stats.addSend(r.ID, sendElems*machine.BytesPerElem, int64(partners))
	g.w.stats.addRecv(r.ID, recvElems*machine.BytesPerElem)
	r.chargeComm(phase, g.w.Params.AllToAllvTime(sendElems*machine.BytesPerElem, recvElems*machine.BytesPerElem, partners))
	return out
}

// netBarrier synchronizes the group over the wire: every member reports to
// member 0, which releases them once all have arrived. Like the in-process
// barrier it charges no time and no volume (synchronization, not data).
func (g *Group) netBarrier(r *Rank, me int) {
	nw := g.w.net
	if me == 0 {
		for i := 1; i < g.Size(); i++ {
			m := nw.recvColl(g.members[i], tagBarrier)
			g.w.pool.put(m.floats)
		}
		for i := 1; i < g.Size(); i++ {
			nw.sendFloats(g.members[i], laneColl, tagBarrierAck, nil)
		}
		return
	}
	nw.sendFloats(g.members[0], laneColl, tagBarrier, nil)
	m := nw.recvColl(g.members[0], tagBarrierAck)
	g.w.pool.put(m.floats)
}
