package comm

import (
	"math"
	"testing"

	"sagnn/internal/machine"
)

// The golden test of the calibration procedure: on the simulated backend the
// ping-pong "measurements" are the exact modeled charges, so the least-
// squares fit must recover the configured machine parameters to floating-
// point precision. Anything off here means the probe's accounting or the
// fit's units drifted from the cost model.
func TestCalibrateGoldenSim(t *testing.T) {
	params := machine.Perlmutter()
	w := NewWorld(4, params)
	cal, err := Calibrate(w, DefaultCalibrationSizes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(cal.Alpha, params.Alpha, 1e-9) {
		t.Errorf("fitted α = %g, configured %g", cal.Alpha, params.Alpha)
	}
	if !approxEq(cal.Beta, params.Beta, 1e-9) {
		t.Errorf("fitted β = %g, configured %g", cal.Beta, params.Beta)
	}
	got := cal.Apply(machine.Params{})
	if got.Alpha != cal.Alpha || got.Beta != cal.Beta {
		t.Errorf("Apply did not install fitted values: %+v", got)
	}
	if len(cal.Samples) != len(DefaultCalibrationSizes()) {
		t.Errorf("%d samples for %d sizes", len(cal.Samples), len(DefaultCalibrationSizes()))
	}
}

// Calibration against a non-default machine must recover that machine, not
// Perlmutter: the probe reads the world's own cost model.
func TestCalibrateGoldenCustomMachine(t *testing.T) {
	params := machine.Perlmutter()
	params.Alpha = 2.5e-5
	params.Beta = 1 / 5e9
	w := NewWorld(2, params)
	cal, err := Calibrate(w, []int{512, 8192, 131072}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(cal.Alpha, params.Alpha, 1e-9) {
		t.Errorf("fitted α = %g, configured %g", cal.Alpha, params.Alpha)
	}
	if !approxEq(cal.Beta, params.Beta, 1e-9) {
		t.Errorf("fitted β = %g, configured %g", cal.Beta, params.Beta)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(NewWorld(1, machine.Perlmutter()), DefaultCalibrationSizes(), 0); err == nil {
		t.Error("single-rank world: want error")
	}
	if _, err := Calibrate(NewWorld(2, machine.Perlmutter()), []int{1024}, 0); err == nil {
		t.Error("single transfer size: want error")
	}
}

// approxEq reports |a−b| ≤ tol·max(|a|,|b|).
func approxEq(a, b, tol float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}
