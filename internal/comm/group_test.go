package comm

import (
	"testing"

	"sagnn/internal/machine"
)

// TestConcurrentColumnGroups exercises the 1.5D communication pattern:
// several column groups run independent collectives simultaneously while
// row groups all-reduce, verifying group isolation under load.
func TestConcurrentColumnGroups(t *testing.T) {
	const p, c = 16, 4
	w := testWorld(p)
	rows := make([]*Group, p/c)
	cols := make([]*Group, c)
	for i := 0; i < p/c; i++ {
		members := make([]int, c)
		for j := 0; j < c; j++ {
			members[j] = i*c + j
		}
		rows[i] = w.NewGroup(members)
	}
	for j := 0; j < c; j++ {
		members := make([]int, p/c)
		for i := 0; i < p/c; i++ {
			members[i] = i*c + j
		}
		cols[j] = w.NewGroup(members)
	}
	w.Run(func(r *Rank) {
		i, j := r.ID/c, r.ID%c
		for round := 0; round < 20; round++ {
			// column bcast from rotating root
			root := round % (p / c)
			var data []float64
			if i == root {
				data = []float64{float64(root*100 + j)}
			}
			got := cols[j].BcastFloats(r, root, data, "bcast")
			if got[0] != float64(root*100+j) {
				panic("column bcast crossed groups")
			}
			// row allreduce
			sum := rows[i].AllReduceSum(r, []float64{1}, "allreduce")
			if sum[0] != float64(c) {
				panic("row allreduce wrong")
			}
		}
	})
}

// TestInterleavedP2PAndCollectives mirrors the SA 1.5D Multiply structure:
// point-to-point stage traffic interleaved with group collectives.
func TestInterleavedP2PAndCollectives(t *testing.T) {
	const p = 8
	w := testWorld(p)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		for stage := 0; stage < 10; stage++ {
			// ring send
			next := (r.ID + 1) % p
			prev := (r.ID + p - 1) % p
			r.Send(next, stage, []float64{float64(r.ID)}, "alltoall")
			got := r.Recv(prev, stage)
			if got[0] != float64(prev) {
				panic("ring payload wrong")
			}
			// then a collective
			sum := g.AllReduceSum(r, []float64{1}, "allreduce")
			if sum[0] != p {
				panic("allreduce wrong")
			}
		}
	})
	if w.Stats().TotalSent() == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestAllToAllvEmptyBuckets verifies zero-length exchanges are legal and
// free of byte accounting.
func TestAllToAllvEmptyBuckets(t *testing.T) {
	w := testWorld(3)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]float64, 3)
		recv := g.AllToAllv(r, send, "alltoall")
		for _, buf := range recv {
			if len(buf) != 0 {
				panic("expected empty")
			}
		}
	})
	if w.Stats().TotalSent() != 0 {
		t.Fatal("empty alltoallv should move no bytes")
	}
}

// TestLedgerPhasesFromCollectives checks that phases land in the ledger
// under the names the experiment breakdowns rely on.
func TestLedgerPhasesFromCollectives(t *testing.T) {
	w := testWorld(4)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		var data []float64
		if r.ID == 0 {
			data = make([]float64, 100)
		}
		g.BcastFloats(r, 0, data, "bcast")
		g.AllReduceSum(r, make([]float64, 10), "allreduce")
		send := make([][]float64, 4)
		for j := range send {
			if j != r.ID {
				send[j] = []float64{1}
			}
		}
		g.AllToAllv(r, send, "alltoall")
	})
	for _, phase := range []string{"bcast", "allreduce", "alltoall"} {
		if w.Ledger.PhaseMax(phase) <= 0 {
			t.Fatalf("phase %q missing from ledger: %v", phase, w.Ledger.Phases())
		}
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty world")
		}
	}()
	NewWorld(0, machine.Perlmutter())
}

func TestNewGroupValidation(t *testing.T) {
	w := testWorld(2)
	for _, members := range [][]int{{0, 2}, {0, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for members %v", members)
				}
			}()
			w.NewGroup(members)
		}()
	}
}
