package comm

import (
	"testing"

	"sagnn/internal/machine"
)

// TestSendOwnedRecvIntoRoundtrip exercises the zero-copy path: the sender
// packs into a pooled buffer and hands it off; the receiver lands the
// payload in its own workspace and the transport buffer is recycled.
func TestSendOwnedRecvIntoRoundtrip(t *testing.T) {
	w := NewWorld(2, machine.Perlmutter())
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := r.GetFloats(3)
			buf[0], buf[1], buf[2] = 1, 2, 3
			r.SendOwned(1, 9, buf, "p2p")
		} else {
			dst := []float64{-1, -1, -1}
			r.RecvInto(0, 9, dst)
			if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
				panic("payload corrupted")
			}
		}
	})
	if w.Stats().BytesSent(0) != 3*machine.BytesPerElem {
		t.Fatalf("sent %d bytes", w.Stats().BytesSent(0))
	}
	if w.Stats().BytesRecv(1) != 3*machine.BytesPerElem {
		t.Fatalf("recv %d bytes", w.Stats().BytesRecv(1))
	}
}

// TestSendOwnedNilPayload covers the empty-message case the 1.5D engines
// use for silent stage partners.
func TestSendOwnedNilPayload(t *testing.T) {
	w := NewWorld(2, machine.Perlmutter())
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendOwned(1, 0, nil, "p2p")
		} else {
			r.RecvInto(0, 0, nil)
		}
	})
	if w.Stats().MsgsSent(0) != 1 {
		t.Fatalf("msgs %d", w.Stats().MsgsSent(0))
	}
}

// TestPoolRecyclesBuffers pins the free-list semantics: a returned buffer
// is handed back for the next fitting request instead of allocating.
func TestPoolRecyclesBuffers(t *testing.T) {
	p := newBufPool()
	b1 := p.get(32)
	p.put(b1)
	b2 := p.get(8) // smaller request reuses the same backing array
	if &b1[:1][0] != &b2[:1][0] {
		t.Fatal("pool did not recycle the buffer")
	}
	if len(b2) != 8 {
		t.Fatalf("len %d, want 8", len(b2))
	}
	p.put(b2)
	b3 := p.get(1 << 20) // too small for this: falls through to a fresh alloc
	if &b3[:1][0] == &b1[:1][0] {
		t.Fatal("pool returned an undersized buffer")
	}
	// RecvInto recycles transport buffers into the world pool: after a
	// Send → RecvInto cycle the pool must be non-empty.
	w := NewWorld(2, machine.Perlmutter())
	w.Run(func(r *Rank) {
		dst := make([]float64, 4)
		if r.ID == 0 {
			r.Send(1, 0, []float64{4, 5, 6, 7}, "p2p")
		} else {
			r.RecvInto(0, 0, dst)
		}
	})
	select {
	case b := <-w.pool.ch:
		if cap(b) < 4 {
			t.Fatalf("recycled buffer cap %d", cap(b))
		}
	default:
		t.Fatal("RecvInto did not recycle the transport buffer")
	}
}

// TestBcastFloatsIntoMatchesBcast pins the Into variant against the
// allocating one: same payload, same stats.
func TestBcastFloatsIntoMatchesBcast(t *testing.T) {
	w1 := NewWorld(3, machine.Perlmutter())
	data := []float64{2, 4, 8}
	w1.Run(func(r *Rank) {
		g := w1.WorldGroup()
		var payload []float64
		if r.ID == 1 {
			payload = data
		}
		got := g.BcastFloats(r, 1, payload, "bcast")
		if got[2] != 8 {
			panic("bad bcast")
		}
	})
	w2 := NewWorld(3, machine.Perlmutter())
	w2.Run(func(r *Rank) {
		g := w2.WorldGroup()
		var payload []float64
		if r.ID == 1 {
			payload = data
		}
		dst := make([]float64, 3)
		g.BcastFloatsInto(r, 1, payload, dst, "bcast")
		if dst[2] != 8 {
			panic("bad bcast into")
		}
	})
	for rank := 0; rank < 3; rank++ {
		if w1.Stats().BytesSent(rank) != w2.Stats().BytesSent(rank) ||
			w1.Stats().BytesRecv(rank) != w2.Stats().BytesRecv(rank) {
			t.Fatalf("rank %d: Into variant changed volume accounting", rank)
		}
	}
}

// TestAllReduceSumIntoMatchesAllReduce checks values and the aliasing guard.
func TestAllReduceSumIntoMatchesAllReduce(t *testing.T) {
	w := NewWorld(4, machine.Perlmutter())
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		in := []float64{float64(r.ID), 1}
		out := make([]float64, 2)
		g.AllReduceSumInto(r, in, out, "allreduce")
		if out[0] != 6 || out[1] != 4 {
			panic("bad allreduce sum")
		}
	})
}

func TestAllReduceSumIntoAliasPanics(t *testing.T) {
	w := NewWorld(1, machine.Perlmutter())
	defer func() {
		if recover() == nil {
			t.Fatal("expected alias panic")
		}
	}()
	w.Run(func(r *Rank) {
		v := []float64{1}
		w.WorldGroup().AllReduceSumInto(r, v, v, "allreduce")
	})
}

// TestAllGatherFloatsIntoMatchesAllGather pins payloads and per-rank
// volumes of the workspace variant against the allocating one, including
// the variable-length contributions the plain AllGatherFloats supports.
func TestAllGatherFloatsIntoMatchesAllGather(t *testing.T) {
	const p = 3
	contrib := func(me int) []float64 {
		out := make([]float64, me+1) // variable length per rank
		for i := range out {
			out[i] = float64(10*me + i)
		}
		return out
	}
	w1 := NewWorld(p, machine.Perlmutter())
	var want [p][][]float64
	w1.Run(func(r *Rank) {
		want[r.ID] = w1.WorldGroup().AllGatherFloats(r, contrib(r.ID), "gather")
	})
	w2 := NewWorld(p, machine.Perlmutter())
	w2.Run(func(r *Rank) {
		dst := make([][]float64, p)
		for i := 0; i < p; i++ {
			dst[i] = make([]float64, i+1)
		}
		w2.WorldGroup().AllGatherFloatsInto(r, contrib(r.ID), dst, "gather")
		for i := 0; i < p; i++ {
			for k, v := range want[r.ID][i] {
				if dst[i][k] != v {
					panic("allgather-into payload mismatch")
				}
			}
		}
	})
	for rank := 0; rank < p; rank++ {
		if w1.Stats().BytesSent(rank) != w2.Stats().BytesSent(rank) ||
			w1.Stats().BytesRecv(rank) != w2.Stats().BytesRecv(rank) {
			t.Fatalf("rank %d: Into variant changed volume accounting", rank)
		}
	}
}

// TestAllToAllvIntoMatchesAllToAllv pins payloads and per-rank volumes of
// the workspace variant against the allocating one.
func TestAllToAllvIntoMatchesAllToAllv(t *testing.T) {
	const p = 3
	build := func(me int) [][]float64 {
		send := make([][]float64, p)
		for j := 0; j < p; j++ {
			if j != me {
				send[j] = []float64{float64(10*me + j)}
			}
		}
		return send
	}
	w1 := NewWorld(p, machine.Perlmutter())
	w1.Run(func(r *Rank) {
		got := w1.WorldGroup().AllToAllv(r, build(r.ID), "alltoall")
		for j := 0; j < p; j++ {
			if j != r.ID && got[j][0] != float64(10*j+r.ID) {
				panic("bad alltoallv payload")
			}
		}
	})
	w2 := NewWorld(p, machine.Perlmutter())
	w2.Run(func(r *Rank) {
		recv := make([][]float64, p)
		for j := 0; j < p; j++ {
			if j != r.ID {
				recv[j] = make([]float64, 1)
			}
		}
		w2.WorldGroup().AllToAllvInto(r, build(r.ID), recv, "alltoall")
		for j := 0; j < p; j++ {
			if j != r.ID && recv[j][0] != float64(10*j+r.ID) {
				panic("bad alltoallv-into payload")
			}
		}
	})
	for rank := 0; rank < p; rank++ {
		if w1.Stats().BytesSent(rank) != w2.Stats().BytesSent(rank) ||
			w1.Stats().BytesRecv(rank) != w2.Stats().BytesRecv(rank) ||
			w1.Stats().MsgsSent(rank) != w2.Stats().MsgsSent(rank) {
			t.Fatalf("rank %d: Into variant changed volume accounting", rank)
		}
	}
}
