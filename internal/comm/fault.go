package comm

import (
	"context"
	"sync"
	"time"
)

// This file is the failure-aware execution layer of the world: fault
// injection (per-rank fail-at-op and slow links), the abort protocol that
// deterministically unblocks every rank mid-collective, and the
// error-returning Run variants. The simulated transport gets the same
// discipline a real network backend needs — timeouts, cancellation, typed
// failures — so everything above it (plan executors, sessions, serving) can
// be built and tested against faults before a TCP/gRPC transport exists.
//
// Abort protocol: the first failure (an injected fault, a rank panic, an
// external Abort, a deadline) records its cause on the world and closes the
// abort channel. Every blocking primitive — mailbox sends and receives,
// barrier waits (and therefore every collective), async workers — selects on
// that channel and unwinds with the abortPanic sentinel, which RunErr
// absorbs on each rank goroutine. After all ranks have joined, RunErr drains
// the mailboxes back into the buffer pool, resets every barrier and exchange
// slot, re-arms the abort channel, and returns the recorded *RankError: the
// world is immediately reusable, which is what makes retry-based recovery
// possible.

// Fault describes one injected failure or degradation, armed with
// InjectFault. Failure faults are one-shot: they disarm when they fire.
type Fault struct {
	// Rank is the world rank to inject at; -1 matches any rank (whichever
	// reaches AfterOps first fires the fault).
	Rank int
	// AfterOps fires the fault when the rank's communication-operation
	// counter reaches this value within a Run (1 = the rank's first op).
	// Counters reset at the start of every Run, so a fault site names a
	// deterministic point in a rank's instruction stream.
	AfterOps int64
	// Err is the reported cause; nil selects ErrInjectedFault.
	Err error
	// Slow, when > 0, degrades instead of failing: from the trigger point
	// on, modeled communication seconds charged to the rank are multiplied
	// by this factor (a flaky NIC, a congested link). The degradation
	// persists until ClearFaults or a SlowRank(rank, 1) heal.
	Slow float64
}

// InjectFault arms a fault. Safe to call at any time, including between
// runs; failure faults fire at most once.
func (w *World) InjectFault(f Fault) {
	w.faultMu.Lock()
	w.faults = append(w.faults, f)
	w.faultMu.Unlock()
	w.haveFaults.Store(true)
}

// ClearFaults disarms every pending fault and heals all slow links.
func (w *World) ClearFaults() {
	w.faultMu.Lock()
	w.faults = nil
	w.faultMu.Unlock()
	w.haveFaults.Store(false)
	w.degrade.Reset()
}

// SlowRank degrades (factor > 1) or heals (factor == 1) a rank's links
// immediately: modeled communication seconds charged to the rank are
// multiplied by factor. Volume accounting is never affected.
func (w *World) SlowRank(rank int, factor float64) {
	w.degrade.SetFactor(rank, factor)
}

// takeFault returns the armed fault matching (rank, op) and, for failure
// faults, disarms it.
func (w *World) takeFault(rank int, op int64) (Fault, bool) {
	w.faultMu.Lock()
	defer w.faultMu.Unlock()
	for i, f := range w.faults {
		if f.Rank != -1 && f.Rank != rank {
			continue
		}
		if op < f.AfterOps {
			continue
		}
		w.faults = append(w.faults[:i], w.faults[i+1:]...)
		if len(w.faults) == 0 {
			w.haveFaults.Store(false)
		}
		return f, true
	}
	return Fault{}, false
}

// opPoint is the fault/abort gate every communication primitive passes
// through on entry: it advances the rank's op counter, fires any armed
// fault, and unwinds immediately when the world is already aborting (so a
// compute-bound rank notices an abort at its next op rather than blocking
// into a dead collective). Both unwinds are abortPanic panics that Run
// recovers into a typed *RankError. It never allocates.
func (r *Rank) opPoint() {
	w := r.w
	n := w.ops[r.ID].Add(1)
	if w.haveFaults.Load() {
		if f, ok := w.takeFault(r.ID, n); ok {
			if f.Slow > 0 {
				w.degrade.SetFactor(r.ID, f.Slow)
			} else {
				err := f.Err
				if err == nil {
					err = ErrInjectedFault
				}
				w.Abort(&RankError{Rank: r.ID, Op: n, Err: err})
				panic(abortPanic{})
			}
		}
	}
	select {
	case <-w.abortCh.Load().ch:
		panic(abortPanic{})
	default:
	}
}

// abortState pairs the channel blocking primitives select on with whether it
// has been closed; the pointer swaps atomically so the hot path never takes
// a lock.
type abortState struct {
	ch     chan struct{}
	closed bool
}

// Abort aborts the current Run: the first call records err as the cause
// (non-*RankError causes are wrapped with Rank == -1) and unblocks every
// rank — barrier waiters, pending sends and receives, async workers — which
// unwind and make RunErr return the cause. Later calls are no-ops. Safe to
// call from any goroutine, including a rank's own.
func (w *World) Abort(err error) { w.abort(err, true) }

// abort is the shared abort body; broadcast selects whether the TCP backend
// announces the abort to its peers (true for locally raised failures, false
// for aborts that arrived from a peer or a detected disconnect — every
// survivor observes those directly, and re-broadcasting would echo forever).
func (w *World) abort(err error, broadcast bool) {
	w.abortMu.Lock()
	if w.abortErr != nil {
		w.abortMu.Unlock()
		return
	}
	if _, ok := err.(*RankError); !ok {
		err = &RankError{Rank: -1, Err: err}
	}
	w.abortErr = err
	st := w.abortCh.Load()
	w.abortCh.Store(&abortState{ch: st.ch, closed: true})
	close(st.ch)
	w.abortMu.Unlock()
	w.groupMu.Lock()
	groups := append([]*Group(nil), w.groups...)
	w.groupMu.Unlock()
	for _, g := range groups {
		g.bar.abort()
	}
	if broadcast && w.net != nil {
		w.net.broadcastAbort(err)
	}
}

// abortCause returns the recorded abort cause, nil if none.
func (w *World) abortCause() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// reset restores an aborted world to a clean, reusable state: the abort
// channel is re-armed, mailboxes are drained back into the buffer pool,
// every barrier and exchange slot is cleared. Callers must ensure no rank
// goroutine or async worker is still inside the world (RunErr guarantees it:
// all ranks have joined and executors drain their workers while unwinding).
func (w *World) reset() {
	w.abortMu.Lock()
	w.abortErr = nil
	if w.abortCh.Load().closed {
		w.abortCh.Store(&abortState{ch: make(chan struct{})})
	}
	w.abortMu.Unlock()
	for d := range w.mail {
		for s := range w.mail[d] {
		drain:
			for {
				select {
				case m := <-w.mail[d][s]:
					w.pool.put(m.floats)
				default:
					break drain
				}
			}
		}
	}
	if w.net != nil {
		w.net.drainInboxes(&w.pool)
	}
	w.groupMu.Lock()
	groups := append([]*Group(nil), w.groups...)
	w.groupMu.Unlock()
	for _, g := range groups {
		g.reset()
	}
}

// RunErr executes fn once per hosted rank (every rank on the in-process
// backend, exactly one on TCP), each in its own goroutine, and blocks
// until all return. Any failure — an injected fault, a rank panic, an error
// returned by fn, an external Abort — aborts the whole collective: every
// blocked rank unwinds deterministically, the world is reset to a reusable
// state, and the first failure's *RankError is returned. A nil return means
// every rank completed.
func (w *World) RunErr(fn func(r *Rank) error) error {
	// Clear any stale abort left by a watchdog that fired after the
	// previous run's last operation (the run itself completed).
	if w.abortCause() != nil {
		w.reset()
	}
	for i := range w.ops {
		w.ops[i].Store(0)
	}
	var wg sync.WaitGroup
	for _, id := range w.hosted {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				e := recover()
				if e == nil || IsAbortPanic(e) {
					return // abort cause already recorded by the aborter
				}
				w.Abort(&RankError{Rank: id, Op: w.ops[id].Load(), Err: toError(e)})
			}()
			if err := fn(&Rank{w: w, ID: id}); err != nil {
				w.Abort(&RankError{Rank: id, Op: w.ops[id].Load(), Err: err})
			}
		}(id)
	}
	wg.Wait()
	if cause := w.abortCause(); cause != nil {
		w.reset()
		return cause
	}
	return nil
}

// RunCtx is RunErr with cancellation: when ctx is cancelled or times out
// mid-run, the world aborts (unblocking every rank mid-collective) and
// RunCtx returns a *RankError wrapping ctx.Err(). A context that can never
// be cancelled adds no overhead.
func (w *World) RunCtx(ctx context.Context, fn func(r *Rank) error) error {
	if ctx.Done() == nil {
		return w.RunErr(fn)
	}
	if err := ctx.Err(); err != nil {
		return &RankError{Rank: -1, Err: err}
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			w.Abort(&RankError{Rank: -1, Err: ctx.Err()})
		case <-stop:
		}
	}()
	err := w.RunErr(fn)
	close(stop)
	<-watcherDone
	if err == nil && w.abortCause() != nil {
		// The watcher fired between the last rank finishing and RunErr's
		// accounting: the work completed, but clear the stale abort so the
		// next run starts clean.
		w.reset()
	}
	return err
}

// RunTimeout is RunErr under a wall-clock deadline: a run that has not
// completed within d aborts and returns a *RankError wrapping
// context.DeadlineExceeded. This is the bounded-time guarantee the chaos
// harness pins: no fault can wedge a world for longer than the deadline.
func (w *World) RunTimeout(d time.Duration, fn func(r *Rank) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return w.RunCtx(ctx, fn)
}

// Ops returns the number of communication operations rank has entered in
// the current (or last) Run — the coordinate fault sites are named in.
func (w *World) Ops(rank int) int64 { return w.ops[rank].Load() }
