package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the wire half of the transport split: the in-process simulated
// backend (comm.go, group.go) stays the default and keeps powering tests,
// fault injection, and cost-model pinning, while a World built by NewWorldTCP
// carries a netWorld and routes the same mailbox/collective primitives over
// persistent framed TCP connections — one process per rank, full mesh. The
// compiled distmm.Plan IR is transport-independent, so the exact same
// schedules execute over either backend; the conformance tests pin that the
// outputs and the logical volume ledgers are bit-identical.
//
// Wire protocol: every frame is an 18-byte header
//
//	kind(1) lane(1) src(4, LE) tag(8, LE int64) count(4, LE)
//
// followed by count elements of 8 bytes each (float64 bits or int64, LE) for
// data frames, or count raw bytes (a cause string) for abort frames. Frames
// travel on two logical lanes multiplexed over one connection pair: laneP2P
// for Send/Recv traffic and laneColl for collective traffic, so an async
// worker's pending RecvInto can never steal a collective's frame. Within a
// lane, per-(src,dst) FIFO order is the TCP stream order — exactly the
// ordering guarantee the simulated mailboxes provide.
//
// Note the accounting split: logical volumes and modeled α–β time are charged
// by the caller-side primitives with the same formulas as the simulated
// backend (a broadcast is one logical tree send even though the root writes
// g-1 frames), while the wire moves 8-byte float64s where the logical model
// counts machine.BytesPerElem. Calibration (calibrate.go) fits α and β in
// logical-byte units, absorbing that constant factor into β.

// Lanes multiplex independent FIFO streams over one connection pair.
const (
	laneP2P  byte = 0 // Send/SendOwned/SendInts ↔ Recv*
	laneColl byte = 1 // group collectives (netcoll.go)
)

// Frame kinds.
const (
	frameHello   byte = 1 // rendezvous: dialer identifies its rank
	frameFloats  byte = 2 // float64 payload
	frameInts    byte = 3 // int payload
	frameAbort   byte = 4 // peer aborted; payload is the cause string
	frameGoodbye byte = 5 // orderly shutdown: peer will send nothing more
)

// Collective-lane tags (netcoll.go): distinct per collective kind so a
// misordered stream surfaces as ErrTagMismatch instead of silent corruption.
const (
	tagBcast = -(101 + iota)
	tagAllReduce
	tagAllGather
	tagAllToAllv
	tagAllToAllvInts
	tagBarrier
	tagBarrierAck
	tagCalibrate
)

// frameHeaderLen is the fixed header size preceding every payload.
const frameHeaderLen = 18

// rendezvousTimeout bounds the full-mesh connection setup in NewWorldTCP.
const rendezvousTimeout = 30 * time.Second

// closeGrace bounds how long Close waits for peers' goodbye frames before
// tearing connections down anyway (a dead peer never says goodbye).
const closeGrace = 5 * time.Second

// putHeader encodes a frame header into b (len ≥ frameHeaderLen).
func putHeader(b []byte, kind, lane byte, src, tag, count int) {
	b[0] = kind
	b[1] = lane
	binary.LittleEndian.PutUint32(b[2:6], uint32(src))
	binary.LittleEndian.PutUint64(b[6:14], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(b[14:18], uint32(count))
}

// parseHeader decodes a frame header.
func parseHeader(b []byte) (kind, lane byte, src, tag, count int) {
	kind = b[0]
	lane = b[1]
	src = int(int32(binary.LittleEndian.Uint32(b[2:6])))
	tag = int(int64(binary.LittleEndian.Uint64(b[6:14])))
	count = int(int32(binary.LittleEndian.Uint32(b[14:18])))
	return
}

// framePool recycles encoded frame buffers between senders and the per-peer
// writer goroutines.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// getFrame returns a length-n frame buffer with unspecified contents.
func getFrame(n int) []byte {
	b := *framePool.Get().(*[]byte)
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// putFrame recycles a frame buffer.
func putFrame(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// inbox is one lane's receive queue from one peer: unbounded (the wire
// replaces the simulated MailboxDepth backpressure — the reader goroutine
// always drains the socket, so a remote sender never blocks), FIFO, and
// abort-aware on the consumer side.
type inbox struct {
	mu  sync.Mutex
	q   []message
	sig chan struct{} // buffered(1) wakeup; coalesces pushes
}

// push appends a message and wakes a waiting consumer.
func (b *inbox) push(m message) {
	b.mu.Lock()
	b.q = append(b.q, m)
	b.mu.Unlock()
	select {
	case b.sig <- struct{}{}:
	default:
	}
}

// pop dequeues the next message, blocking until one arrives or abort closes;
// ok is false on abort. When the queue stays non-empty it re-arms the wakeup
// so coalesced pushes are never lost.
func (b *inbox) pop(abort <-chan struct{}) (message, bool) {
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			m := b.q[0]
			copy(b.q, b.q[1:])
			b.q[len(b.q)-1] = message{}
			b.q = b.q[:len(b.q)-1]
			nonEmpty := len(b.q) > 0
			b.mu.Unlock()
			if nonEmpty {
				select {
				case b.sig <- struct{}{}:
				default:
				}
			}
			return m, true
		}
		b.mu.Unlock()
		select {
		case <-b.sig:
		case <-abort:
			return message{}, false
		}
	}
}

// drainInto empties the inbox, recycling float payloads.
func (b *inbox) drainInto(pool *bufPool) {
	b.mu.Lock()
	for _, m := range b.q {
		pool.put(m.floats)
	}
	b.q = b.q[:0]
	b.mu.Unlock()
}

// frameQueue is a per-peer unbounded queue of encoded frames feeding one
// writer goroutine — the write-coalescing stage: many small frames enqueued
// while a write is in progress are drained as one batch and flushed once.
type frameQueue struct {
	mu   sync.Mutex
	bufs [][]byte
	sig  chan struct{} // buffered(1) wakeup
	stop chan struct{}
}

func newFrameQueue() *frameQueue {
	return &frameQueue{sig: make(chan struct{}, 1), stop: make(chan struct{})}
}

// push enqueues an encoded frame; never blocks.
func (q *frameQueue) push(b []byte) {
	q.mu.Lock()
	q.bufs = append(q.bufs, b)
	q.mu.Unlock()
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// drain blocks until frames are pending and takes them all; ok is false once
// the queue is stopped and empty (frames enqueued before stop still drain).
func (q *frameQueue) drain() (batch [][]byte, ok bool) {
	for {
		q.mu.Lock()
		if len(q.bufs) > 0 {
			batch = q.bufs
			q.bufs = nil
			q.mu.Unlock()
			return batch, true
		}
		q.mu.Unlock()
		select {
		case <-q.sig:
		case <-q.stop:
			q.mu.Lock()
			batch = q.bufs
			q.bufs = nil
			q.mu.Unlock()
			return batch, len(batch) > 0
		}
	}
}

// empty reports whether nothing is pending (the flush-on-idle test).
func (q *frameQueue) empty() bool {
	q.mu.Lock()
	e := len(q.bufs) == 0
	q.mu.Unlock()
	return e
}

// netPeer is one full-mesh neighbour: its connection, the outgoing frame
// queue its writer goroutine drains, and shutdown bookkeeping.
type netPeer struct {
	rank    int
	conn    net.Conn
	q       *frameQueue
	wdone   chan struct{} // closed when the writer goroutine exits
	saidBye atomic.Bool   // peer sent goodbye (or its reader exited)
	byeOnce sync.Once
}

// netWorld is the TCP backend state hung off a World: exactly one hosted
// rank (self), a persistent connection per peer, per-(src,lane) inboxes the
// reader goroutines land decoded frames into, and orderly-shutdown state.
type netWorld struct {
	w      *World
	self   int
	addrs  []string
	ln     net.Listener
	peers  []*netPeer // indexed by world rank; nil at self
	closed atomic.Bool
	byeWG  sync.WaitGroup // one count per peer, released on goodbye/EOF

	// inboxes[src][lane] queues decoded messages from src.
	inboxes [][2]inbox
}

// markBye releases the peer's goodbye count exactly once.
func (nw *netWorld) markBye(p *netPeer) {
	p.saidBye.Store(true)
	p.byeOnce.Do(nw.byeWG.Done)
}

// enqueue hands an encoded frame to dst's writer. Frames to a torn-down peer
// are dropped — the disconnect itself is surfaced by the reader's abort.
func (nw *netWorld) enqueue(dst int, b []byte) {
	p := nw.peers[dst]
	if p == nil {
		putFrame(b)
		return
	}
	p.q.push(b)
}

// sendFloats encodes and enqueues a float frame for dst. Serialization is
// synchronous in the caller, so a pooled payload can be recycled on return.
func (nw *netWorld) sendFloats(dst int, lane byte, tag int, data []float64) {
	b := getFrame(frameHeaderLen + len(data)*8)
	putHeader(b, frameFloats, lane, nw.self, tag, len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[frameHeaderLen+i*8:], math.Float64bits(v))
	}
	nw.enqueue(dst, b)
}

// sendInts encodes and enqueues an int frame for dst.
func (nw *netWorld) sendInts(dst int, lane byte, tag int, data []int) {
	b := getFrame(frameHeaderLen + len(data)*8)
	putHeader(b, frameInts, lane, nw.self, tag, len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[frameHeaderLen+i*8:], uint64(int64(v)))
	}
	nw.enqueue(dst, b)
}

// sendMessage routes one mailbox message (the p2p path) onto the wire,
// recycling the pooled float payload once encoded.
func (nw *netWorld) sendMessage(dst int, lane byte, m message) {
	if m.ints != nil {
		nw.sendInts(dst, lane, m.tag, m.ints)
		return
	}
	nw.sendFloats(dst, lane, m.tag, m.floats)
	nw.w.pool.put(m.floats)
}

// recvLane pops the next frame from src on the given lane, unwinding with
// the abort sentinel panic when the world aborts first (the caller is a rank
// goroutine; RunErr recovers the panic into the recorded *RankError).
func (nw *netWorld) recvLane(src int, lane byte) message {
	m, ok := nw.inboxes[src][lane].pop(nw.w.abortCh.Load().ch)
	if !ok {
		panic(abortPanic{})
	}
	return m
}

// recvColl is recvLane on the collective lane with the tag contract
// enforced: a mismatch means a corrupted or misordered stream, so it aborts
// the world with ErrTagMismatch and unwinds with the abort sentinel panic.
func (nw *netWorld) recvColl(src, tag int) message {
	m := nw.recvLane(src, laneColl)
	if m.tag != tag {
		nw.w.abort(&RankError{Rank: nw.self, Err: fmt.Errorf("%w: collective lane expected tag %d from rank %d, got %d", ErrTagMismatch, tag, src, m.tag)}, true)
		panic(abortPanic{})
	}
	return m
}

// broadcastAbort tells every peer this process has aborted (best-effort; a
// peer that is gone already surfaced its own disconnect).
func (nw *netWorld) broadcastAbort(err error) {
	if nw.closed.Load() {
		return
	}
	msg := err.Error()
	for _, p := range nw.peers {
		if p == nil {
			continue
		}
		b := getFrame(frameHeaderLen + len(msg))
		putHeader(b, frameAbort, laneP2P, nw.self, 0, len(msg))
		copy(b[frameHeaderLen:], msg)
		p.q.push(b)
	}
}

// drainInboxes empties every inbox back into the buffer pool (World.reset).
func (nw *netWorld) drainInboxes(pool *bufPool) {
	for i := range nw.inboxes {
		for l := range nw.inboxes[i] {
			nw.inboxes[i][l].drainInto(pool)
		}
	}
}

// writer is the per-peer send goroutine: it drains the frame queue in
// batches through a buffered writer and flushes only when the queue runs
// dry, coalescing the many-small-frames patterns (SendRows bursts,
// all-to-allv) into few syscalls.
func (nw *netWorld) writer(p *netPeer) {
	defer close(p.wdone)
	bw := bufio.NewWriterSize(p.conn, 64<<10)
	for {
		batch, ok := p.q.drain()
		for _, b := range batch {
			if _, err := bw.Write(b); err != nil {
				putFrame(b)
				// The reader on this connection surfaces the failure; the
				// writer just stops transmitting.
				if !ok {
					return
				}
				continue
			}
			putFrame(b)
		}
		if !ok {
			bw.Flush()
			return
		}
		if p.q.empty() {
			bw.Flush()
		}
	}
}

// reader is the per-peer receive goroutine: it decodes frames off the
// connection into pooled buffers and lands them in the (src,lane) inbox. A
// connection failure before the peer's goodbye aborts the world with a
// *RankError wrapping ErrPeerDisconnected — a killed or hung peer surfaces
// as a typed error on every survivor instead of a deadlock.
func (nw *netWorld) reader(p *netPeer) {
	defer nw.markBye(p) // a vanished peer must not wedge Close's goodbye wait
	hdr := make([]byte, frameHeaderLen)
	var scratch []byte
	for {
		if _, err := io.ReadFull(p.conn, hdr); err != nil {
			nw.peerGone(p, err)
			return
		}
		kind, lane, src, tag, count := parseHeader(hdr)
		if src != p.rank || count < 0 || lane > laneColl {
			nw.peerGone(p, fmt.Errorf("comm: malformed frame from rank %d (kind %d src %d lane %d count %d)", p.rank, kind, src, lane, count))
			return
		}
		switch kind {
		case frameFloats:
			need := count * 8
			if cap(scratch) < need {
				scratch = make([]byte, need)
			}
			s := scratch[:need]
			if _, err := io.ReadFull(p.conn, s); err != nil {
				nw.peerGone(p, err)
				return
			}
			buf := nw.w.pool.get(count)
			for i := 0; i < count; i++ {
				buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[i*8:]))
			}
			nw.inboxes[src][lane].push(message{tag: tag, floats: buf})
		case frameInts:
			need := count * 8
			if cap(scratch) < need {
				scratch = make([]byte, need)
			}
			s := scratch[:need]
			if _, err := io.ReadFull(p.conn, s); err != nil {
				nw.peerGone(p, err)
				return
			}
			ints := make([]int, count)
			for i := 0; i < count; i++ {
				ints[i] = int(int64(binary.LittleEndian.Uint64(s[i*8:])))
			}
			nw.inboxes[src][lane].push(message{tag: tag, ints: ints})
		case frameAbort:
			if cap(scratch) < count {
				scratch = make([]byte, count)
			}
			s := scratch[:count]
			if _, err := io.ReadFull(p.conn, s); err != nil {
				nw.peerGone(p, err)
				return
			}
			nw.w.abort(&RankError{Rank: p.rank, Err: fmt.Errorf("%w: %s", ErrPeerAborted, string(s))}, false)
		case frameGoodbye:
			nw.markBye(p)
		default:
			nw.peerGone(p, fmt.Errorf("comm: unknown frame kind %d from rank %d", kind, p.rank))
			return
		}
	}
}

// peerGone maps a connection failure onto the abort protocol, unless the
// failure is an expected consequence of orderly shutdown (this side already
// closing, or the peer said goodbye and then closed its end).
func (nw *netWorld) peerGone(p *netPeer, err error) {
	if nw.closed.Load() || p.saidBye.Load() {
		return
	}
	nw.w.abort(&RankError{Rank: p.rank, Err: fmt.Errorf("%w: %v", ErrPeerDisconnected, err)}, false)
}

// close runs the orderly shutdown: announce goodbye to every peer, wait
// (bounded by closeGrace) until every peer has said goodbye or vanished — so
// closing our sockets cannot abort a peer still mid-run — then stop the
// writers (flushing their queues) and tear the connections down.
func (nw *netWorld) close() error {
	if nw.closed.Swap(true) {
		return nil
	}
	for _, p := range nw.peers {
		if p == nil {
			continue
		}
		b := getFrame(frameHeaderLen)
		putHeader(b, frameGoodbye, laneP2P, nw.self, 0, 0)
		p.q.push(b)
	}
	done := make(chan struct{})
	go func() {
		nw.byeWG.Wait()
		close(done)
	}()
	grace := time.NewTimer(closeGrace)
	select {
	case <-done:
	case <-grace.C:
	}
	grace.Stop()
	var first error
	for _, p := range nw.peers {
		if p == nil {
			continue
		}
		close(p.q.stop)
		<-p.wdone
		if err := p.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	if nw.ln != nil {
		if err := nw.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// teardown closes everything unconditionally (failed rendezvous cleanup).
func (nw *netWorld) teardown() {
	nw.closed.Store(true)
	for _, p := range nw.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	if nw.ln != nil {
		nw.ln.Close()
	}
}
