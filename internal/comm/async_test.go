package comm

import (
	"runtime"
	"testing"
	"time"

	"sagnn/internal/machine"
)

// TestAsyncFormsMatchBlocking drives all three Start*/Await forms in a
// two-rank world and checks the landed data and volume accounting equal the
// blocking forms'.
func TestAsyncFormsMatchBlocking(t *testing.T) {
	w := NewWorld(2, machine.Perlmutter())
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		a := NewAsync()
		defer a.Close()

		// Broadcast from rank 0.
		payload := []float64{1, 2, 3}
		dst := make([]float64, 3)
		var own []float64
		if r.ID == 0 {
			own = payload
		}
		a.StartBcastFloatsInto(g, r, 0, own, dst, "bcast")
		a.Await()
		for i, v := range payload {
			if dst[i] != v {
				t.Errorf("rank %d: bcast landed %v", r.ID, dst)
				break
			}
		}

		// Point-to-point: each rank sends one tagged row to the other.
		peer := 1 - r.ID
		r.Send(peer, 7, []float64{float64(r.ID) + 10}, "alltoall")
		got := make([]float64, 1)
		a.StartRecvInto(r, peer, 7, got)
		a.Await()
		if got[0] != float64(peer)+10 {
			t.Errorf("rank %d: recv %v", r.ID, got)
		}

		// All-to-allv: rank i sends {i} to everyone.
		send := [][]float64{{float64(r.ID)}, {float64(r.ID)}}
		recv := [][]float64{make([]float64, 1), make([]float64, 1)}
		a.StartAllToAllvInto(g, r, send, recv, "alltoall")
		a.Await()
		if recv[0][0] != 0 || recv[1][0] != 1 {
			t.Errorf("rank %d: alltoallv landed %v", r.ID, recv)
		}
	})
	for rank := 0; rank < 2; rank++ {
		// bcast (rank 0 sends 3 elems), one p2p row, one a2a row to the peer.
		wantSent := int64(1+1) * machine.BytesPerElem
		if rank == 0 {
			wantSent += 3 * machine.BytesPerElem
		}
		if got := w.Stats().BytesSent(rank); got != wantSent {
			t.Errorf("rank %d sent %d bytes, want %d", rank, got, wantSent)
		}
	}
}

// TestAsyncCloseReleasesWorker pins the lifecycle contract: Close (also the
// finalizer) ends the parked worker goroutine, Await on an idle Async is a
// no-op, and reuse after Close panics.
func TestAsyncCloseReleasesWorker(t *testing.T) {
	w := NewWorld(1, machine.Perlmutter())
	g := w.WorldGroup()
	before := runtime.NumGoroutine()
	w.Run(func(r *Rank) {
		a := NewAsync()
		a.Await() // idle: no-op
		dst := make([]float64, 1)
		a.StartBcastFloatsInto(g, r, 0, []float64{5}, dst, "")
		a.Await()
		if dst[0] != 5 {
			t.Errorf("bcast landed %v", dst)
		}
		a.Close()
		a.Close() // idempotent
		defer func() {
			if recover() == nil {
				t.Error("Start after Close should panic")
			}
		}()
		a.StartRecvInto(r, 0, 0, dst)
	})
	// The worker parks and exits asynchronously after Close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("%d goroutines after Close, %d before", n, before)
	}
}
