package comm

import (
	"fmt"
	"runtime"
)

// Async runs communication operations on a dedicated background goroutine so
// a rank can overlap a pending transfer with local compute: a Start* form
// hands the worker one operation and returns immediately; Await blocks until
// that operation has completed (the join point at which the landed data may
// be read). The Start* forms are the non-blocking counterparts of the
// blocking Into-collectives and run over the same typed exchange slots, so
// volume accounting, the sender-pays convention, and the data moved are all
// identical to the blocking forms — only the calling goroutine differs.
//
// At most one operation may be in flight per Async; starting a second
// before Await panics. This mirrors the double-buffered pipelining the
// overlapped plan executor performs (lookahead of exactly one stage) and,
// crucially, it keeps each rank's collectives entering their groups in
// program order — two concurrent collective entries from one rank would
// corrupt the group's exchange slots.
//
// The worker goroutine is spawned lazily on the first Start and then parks
// between operations, so steady-state Start/Await pairs are allocation-free
// (channel operations only). The worker holds references only to the
// request/response channels and the operation slot — never to the Async
// itself — so an Async that becomes unreachable (its engine was dropped) is
// collectable, and a finalizer closes the worker down; long-lived processes
// that build and discard overlap-mode engines do not accumulate parked
// goroutines. Close releases the worker deterministically; a closed Async
// must not be reused.
type Async struct {
	req      chan struct{}
	done     chan struct{}
	op       *asyncOp
	inFlight bool
	started  bool
	closed   bool
}

// asyncKind enumerates the operations a worker can run.
type asyncKind uint8

const (
	asyncBcastInto asyncKind = iota
	asyncAllToAllvInto
	asyncRecvInto
)

// asyncOp carries one pending operation's arguments to the worker. Fields
// are written by the starting goroutine before the req send and read by the
// worker after the matching receive, so the channel provides the
// happens-before edge; no other synchronization is needed.
type asyncOp struct {
	kind       asyncKind
	r          *Rank
	g          *Group
	root       int
	data, dst  []float64
	send, recv [][]float64
	src, tag   int
	phase      string
	panicked   any
}

// NewAsync creates an idle asynchronous operation runner. The backing worker
// goroutine starts on the first Start* call and is released by Close — or by
// the runtime, once nothing references the Async anymore.
func NewAsync() *Async {
	a := &Async{req: make(chan struct{}, 1), done: make(chan struct{}, 1), op: &asyncOp{}}
	runtime.SetFinalizer(a, (*Async).Close)
	return a
}

// tryStart hands the already-filled operation to the worker, reporting
// misuse as a typed error (ErrAsyncClosed, ErrAsyncBusy).
func (a *Async) tryStart() error {
	if a.closed {
		return ErrAsyncClosed
	}
	if a.inFlight {
		return ErrAsyncBusy
	}
	if !a.started {
		a.started = true
		go asyncLoop(a.req, a.done, a.op)
	}
	a.inFlight = true
	a.req <- struct{}{}
	return nil
}

// start is tryStart with the legacy contract: misuse panics.
func (a *Async) start() {
	if err := a.tryStart(); err != nil {
		panic(err.Error())
	}
}

// asyncLoop is the worker: one operation per request, until the request
// channel closes. A free function over the channels and the operation slot,
// deliberately not a method — a worker referencing its Async would keep it
// reachable forever and defeat the finalizer.
func asyncLoop(req, done chan struct{}, op *asyncOp) {
	for range req {
		op.run()
		done <- struct{}{}
	}
}

// run executes the pending operation, capturing any panic so Await can
// re-raise it on the rank's own goroutine (where World.Run's recovery
// attributes it).
func (op *asyncOp) run() {
	defer func() { op.panicked = recover() }()
	switch op.kind {
	case asyncBcastInto:
		op.g.BcastFloatsInto(op.r, op.root, op.data, op.dst, op.phase)
	case asyncAllToAllvInto:
		op.g.AllToAllvInto(op.r, op.send, op.recv, op.phase)
	case asyncRecvInto:
		op.r.RecvInto(op.src, op.tag, op.dst)
	default:
		panic(fmt.Sprintf("comm: unknown async op %d", op.kind))
	}
}

// Await blocks until the in-flight operation completes. It is a no-op when
// nothing is in flight, so pipelined executors can Await unconditionally.
func (a *Async) Await() {
	if !a.inFlight {
		return
	}
	<-a.done
	a.inFlight = false
	if p := a.op.panicked; p != nil {
		*a.op = asyncOp{}
		panic(p)
	}
	*a.op = asyncOp{}
}

// Drain waits out any in-flight operation and discards its outcome —
// including a captured panic — leaving the Async idle and reusable. It is
// the abort-path counterpart of Await: an executor unwinding from a world
// abort cannot re-raise (it is already panicking) but must not leave a
// completion pending, or the next run's first Await would consume a stale
// one. Safe to call when nothing is in flight. The caller must ensure the
// in-flight operation can finish — on the abort path World.Abort has
// already unblocked it.
func (a *Async) Drain() {
	if !a.inFlight {
		return
	}
	<-a.done
	a.inFlight = false
	*a.op = asyncOp{}
}

// Close waits for any in-flight operation and releases the worker
// goroutine. The Async must not be used afterwards. Also installed as the
// finalizer, so dropping every reference has the same effect eventually.
func (a *Async) Close() {
	if a.closed {
		return
	}
	// Drain, not Await: Close also runs as a finalizer and on abort paths,
	// where re-raising a captured panic would be fatal or double-panic.
	a.Drain()
	a.closed = true
	runtime.SetFinalizer(a, nil)
	if a.started {
		close(a.req)
	}
}

// StartBcastFloatsInto begins BcastFloatsInto on the background worker:
// root's payload lands in dst (whose length must equal the payload length)
// once Await returns. Volume accounting and time charges match the blocking
// form.
func (a *Async) StartBcastFloatsInto(g *Group, r *Rank, root int, data, dst []float64, phase string) {
	*a.op = asyncOp{kind: asyncBcastInto, g: g, r: r, root: root, data: data, dst: dst, phase: phase}
	a.start()
}

// StartAllToAllvInto begins AllToAllvInto on the background worker: send[j]
// goes to group member j and member j's contribution lands in recv[j] once
// Await returns. The caller must not touch send or recv until Await.
func (a *Async) StartAllToAllvInto(g *Group, r *Rank, send, recv [][]float64, phase string) {
	*a.op = asyncOp{kind: asyncAllToAllvInto, g: g, r: r, send: send, recv: recv, phase: phase}
	a.start()
}

// StartRecvInto begins RecvInto on the background worker: the tagged message
// from src has landed in dst once Await returns. As with the blocking form,
// no time is charged — the sender already paid (see the package comment).
func (a *Async) StartRecvInto(r *Rank, src, tag int, dst []float64) {
	*a.op = asyncOp{kind: asyncRecvInto, r: r, src: src, tag: tag, dst: dst}
	a.start()
}

// TryStartBcastFloatsInto is StartBcastFloatsInto reporting misuse (already
// in flight, closed) as a typed error instead of panicking.
func (a *Async) TryStartBcastFloatsInto(g *Group, r *Rank, root int, data, dst []float64, phase string) error {
	if a.closed || a.inFlight {
		return a.tryStart()
	}
	*a.op = asyncOp{kind: asyncBcastInto, g: g, r: r, root: root, data: data, dst: dst, phase: phase}
	return a.tryStart()
}

// TryStartAllToAllvInto is StartAllToAllvInto reporting misuse as a typed
// error instead of panicking.
func (a *Async) TryStartAllToAllvInto(g *Group, r *Rank, send, recv [][]float64, phase string) error {
	if a.closed || a.inFlight {
		return a.tryStart()
	}
	*a.op = asyncOp{kind: asyncAllToAllvInto, g: g, r: r, send: send, recv: recv, phase: phase}
	return a.tryStart()
}

// TryStartRecvInto is StartRecvInto reporting misuse as a typed error
// instead of panicking.
func (a *Async) TryStartRecvInto(r *Rank, src, tag int, dst []float64) error {
	if a.closed || a.inFlight {
		return a.tryStart()
	}
	*a.op = asyncOp{kind: asyncRecvInto, r: r, src: src, tag: tag, dst: dst}
	return a.tryStart()
}
