package comm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// chaosTimeout bounds every faulted run: the acceptance criterion is a typed
// error within bounded wall-clock time, never a deadlock.
const chaosTimeout = 10 * time.Second

// collectiveProgram is a representative mixed workload: every rank does
// barriers, a broadcast, an all-reduce, and neighbor p2p — enough distinct
// blocking points that a fault at any op index strands survivors in a
// different primitive.
func collectiveProgram(rounds int) func(r *Rank) error {
	return func(r *Rank) error {
		g := r.World().WorldGroup()
		buf := make([]float64, 8)
		for i := range buf {
			buf[i] = float64(r.ID)
		}
		for round := 0; round < rounds; round++ {
			g.Barrier(r)
			g.BcastFloats(r, 0, buf, "bcast")
			g.AllReduceSum(r, buf, "allreduce")
			next := (r.ID + 1) % r.P()
			prev := (r.ID + r.P() - 1) % r.P()
			if r.P() > 1 {
				r.Send(next, round, buf, "p2p")
				got, err := r.TryRecv(prev, round)
				if err != nil {
					return err
				}
				r.PutFloats(got)
			}
		}
		return nil
	}
}

func TestInjectFaultReturnsTypedError(t *testing.T) {
	w := testWorld(4)
	w.InjectFault(Fault{Rank: 2, AfterOps: 5})
	err := w.RunTimeout(chaosTimeout, collectiveProgram(20))
	if err == nil {
		t.Fatal("faulted run returned nil")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %T: %v", err, err)
	}
	if re.Rank != 2 || re.Op != 5 {
		t.Fatalf("fault attributed to rank %d op %d, want rank 2 op 5", re.Rank, re.Op)
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("cause not ErrInjectedFault: %v", err)
	}
}

func TestFaultAtEveryOpSiteUnblocksWithinDeadline(t *testing.T) {
	// Sweep the fault across every op index of a short program: wherever it
	// lands — barrier, bcast, allreduce, send, recv — all ranks must unwind
	// and the run must report the fault.
	clean := testWorld(3)
	if err := clean.RunTimeout(chaosTimeout, collectiveProgram(2)); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	maxOps := clean.Ops(0)
	for site := int64(1); site <= maxOps; site++ {
		for rank := 0; rank < 3; rank++ {
			w := testWorld(3)
			w.InjectFault(Fault{Rank: rank, AfterOps: site})
			err := w.RunTimeout(chaosTimeout, collectiveProgram(2))
			if err == nil {
				t.Fatalf("rank %d op %d: fault did not surface", rank, site)
			}
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("rank %d op %d: unexpected cause %v", rank, site, err)
			}
		}
	}
}

func TestWorldReusableAfterAbort(t *testing.T) {
	w := testWorld(4)
	for attempt := 0; attempt < 3; attempt++ {
		w.InjectFault(Fault{Rank: -1, AfterOps: 3})
		if err := w.RunTimeout(chaosTimeout, collectiveProgram(10)); err == nil {
			t.Fatalf("attempt %d: fault did not surface", attempt)
		}
	}
	// Faults cleared; the same world must now run correctly end to end.
	sums := make([]float64, 4)
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		g := r.World().WorldGroup()
		out := g.AllReduceSum(r, []float64{float64(r.ID)}, "allreduce")
		sums[r.ID] = out[0]
		return nil
	})
	if err != nil {
		t.Fatalf("post-abort run failed: %v", err)
	}
	for rank, s := range sums {
		if s != 6 { // 0+1+2+3
			t.Fatalf("rank %d got %v after world reuse, want 6", rank, s)
		}
	}
}

func TestRunErrPropagatesFnError(t *testing.T) {
	w := testWorld(3)
	boom := errors.New("boom")
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 1 {
			return boom
		}
		// Survivors head into a barrier that can only be released by abort.
		r.World().WorldGroup().Barrier(r)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("error not attributed to rank 1: %v", err)
	}
}

func TestRunErrPropagatesRankPanic(t *testing.T) {
	w := testWorld(3)
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 2 {
			panic("kaboom")
		}
		r.World().WorldGroup().Barrier(r)
		return nil
	})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("panic not attributed to rank 2: %v", err)
	}
}

func TestRunCtxCancelUnblocksMidCollective(t *testing.T) {
	w := testWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := withDeadlockGuard(t, func() error {
		return w.RunCtx(ctx, func(r *Rank) error {
			// Both ranks block on receives that will never be satisfied.
			_, err := r.TryRecv((r.ID+1)%2, 99)
			return err
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > chaosTimeout {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// withDeadlockGuard runs f on a goroutine and fails the test if it has not
// returned within the chaos timeout (instead of wedging the test binary).
func withDeadlockGuard(t *testing.T, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(chaosTimeout):
		t.Fatal("run deadlocked past chaos timeout")
		return nil
	}
}

func TestRunTimeoutDeadline(t *testing.T) {
	w := testWorld(2)
	err := w.RunTimeout(50*time.Millisecond, func(r *Rank) error {
		_, err := r.TryRecv((r.ID+1)%2, 7) // never sent
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	w := testWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := w.RunCtx(ctx, func(r *Rank) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran {
		t.Fatal("ranks launched under a dead context")
	}
}

func TestSlowLinkScalesCommTime(t *testing.T) {
	run := func(slow float64) float64 {
		w := testWorld(2)
		if slow > 0 {
			w.SlowRank(0, slow)
		}
		if err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
			if r.ID == 0 {
				r.Send(1, 1, make([]float64, 1024), "p2p")
			} else {
				r.PutFloats(r.Recv(0, 1))
			}
			return nil
		}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return w.Ledger.RankTotal(0)
	}
	base := run(0)
	degraded := run(8)
	if base <= 0 {
		t.Fatal("baseline charged no comm time")
	}
	if got := degraded / base; got < 7.9 || got > 8.1 {
		t.Fatalf("slow-link factor 8 priced as ×%.3f", got)
	}
}

func TestSlowFaultDegradesFromTriggerPoint(t *testing.T) {
	w := testWorld(2)
	w.InjectFault(Fault{Rank: 0, AfterOps: 2, Slow: 4})
	if err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 1, make([]float64, 512), "warm")     // clean
			r.Send(1, 2, make([]float64, 512), "degraded") // op 2 arms the slowdown, then charges
		} else {
			r.PutFloats(r.Recv(0, 1))
			r.PutFloats(r.Recv(0, 2))
		}
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	warm := w.Ledger.PhaseMax("warm") // only rank 0 charges these phases
	degraded := w.Ledger.PhaseMax("degraded")
	if got := degraded / warm; got < 3.9 || got > 4.1 {
		t.Fatalf("post-trigger ops priced ×%.3f, want ×4", got)
	}
	w.ClearFaults()
	if f := w.CommFactorForTest(0); f != 1 {
		t.Fatalf("ClearFaults left factor %v", f)
	}
}

// CommFactorForTest exposes the degradation factor for assertions.
func (w *World) CommFactorForTest(rank int) float64 {
	var f float64
	w.Run(func(r *Rank) {
		if r.ID == rank {
			f = r.CommFactor()
		}
	})
	return f
}

func TestTryRecvTagMismatchTypedError(t *testing.T) {
	w := testWorld(2)
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 5, []float64{1}, "")
			return nil
		}
		_, err := r.TryRecv(0, 6)
		return err
	})
	if !errors.Is(err, ErrTagMismatch) {
		t.Fatalf("want ErrTagMismatch, got %v", err)
	}
}

func TestTryRecvIntoSizeMismatchTypedError(t *testing.T) {
	w := testWorld(2)
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 5, []float64{1, 2, 3}, "")
			return nil
		}
		return r.TryRecvInto(0, 5, make([]float64, 2))
	})
	if !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("want ErrSizeMismatch, got %v", err)
	}
}

func TestAsyncTryStartTypedErrors(t *testing.T) {
	w := testWorld(2)
	err := w.RunTimeout(chaosTimeout, func(r *Rank) error {
		if r.ID == 1 {
			r.PutFloats(r.Recv(0, 1))
			r.Send(0, 9, []float64{42}, "")
			return nil
		}
		a := NewAsync()
		defer a.Close()
		dst := make([]float64, 1)
		if err := a.TryStartRecvInto(r, 1, 9, dst); err != nil {
			return fmt.Errorf("first start: %w", err)
		}
		if err := a.TryStartRecvInto(r, 1, 9, dst); !errors.Is(err, ErrAsyncBusy) {
			return fmt.Errorf("double start: want ErrAsyncBusy, got %v", err)
		}
		r.Send(1, 1, []float64{0}, "") // releases rank 1, which satisfies the recv
		a.Await()
		if dst[0] != 42 {
			return fmt.Errorf("async recv landed %v", dst[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	a := NewAsync()
	a.Close()
	if err := a.TryStartRecvInto(nil, 0, 0, nil); !errors.Is(err, ErrAsyncClosed) {
		t.Fatalf("start on closed: want ErrAsyncClosed, got %v", err)
	}
}

func TestOpCountersDeterministic(t *testing.T) {
	counts := func() []int64 {
		w := testWorld(3)
		if err := w.RunTimeout(chaosTimeout, collectiveProgram(4)); err != nil {
			t.Fatalf("run: %v", err)
		}
		out := make([]int64, 3)
		for i := range out {
			out[i] = w.Ops(i)
		}
		return out
	}
	a, b := counts(), counts()
	for i := range a {
		if a[i] != b[i] || a[i] == 0 {
			t.Fatalf("op counters not deterministic: %v vs %v", a, b)
		}
	}
}

func TestNoGoroutineLeakAcrossAbortedRuns(t *testing.T) {
	w := testWorld(4)
	warm := func() {
		w.InjectFault(Fault{Rank: -1, AfterOps: 7})
		_ = w.RunTimeout(chaosTimeout, collectiveProgram(10))
		_ = w.RunTimeout(chaosTimeout, collectiveProgram(2))
	}
	warm() // let any lazily-created goroutines exist before the baseline
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		warm()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across aborted runs", base, runtime.NumGoroutine())
}
