package comm

import "sync"

// barrier is a reusable cyclic barrier for a fixed party count, with an
// abort mode: once aborted, every current and future waiter unwinds with the
// abortPanic sentinel instead of blocking into a round that will never
// complete (some parties have already failed). reset re-arms it for the
// next run.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	round   uint64
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all p parties have called wait for the current round,
// or unwinds if the barrier is aborted first — the unwind is an abortPanic
// panic that Run recovers into a typed *RankError. A waiter whose round
// completed before the abort proceeds normally — the abort only kills
// rounds that can no longer fill.
func (b *barrier) wait() {
	if b.p == 1 {
		return
	}
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	round := b.round
	b.count++
	if b.count == b.p {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for round == b.round && !b.aborted {
		b.cond.Wait()
	}
	failed := b.aborted && round == b.round
	b.mu.Unlock()
	if failed {
		panic(abortPanic{})
	}
}

// abort wakes every waiter and makes this and all future rounds unwind,
// until reset.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms an aborted barrier. The round advances so any straggler
// still holding the old round number exits cleanly rather than rejoining a
// half-counted round; callers (World.reset) guarantee no party is actively
// waiting when reset runs.
func (b *barrier) reset() {
	b.mu.Lock()
	b.aborted = false
	b.count = 0
	b.round++
	b.cond.Broadcast()
	b.mu.Unlock()
}
