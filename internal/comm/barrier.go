package comm

import "sync"

// barrier is a reusable cyclic barrier for a fixed party count.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	round uint64
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all p parties have called wait for the current round.
func (b *barrier) wait() {
	if b.p == 1 {
		return
	}
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.p {
		b.count = 0
		b.round++
		b.cond.Broadcast()
	} else {
		for round == b.round {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
