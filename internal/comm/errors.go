package comm

import (
	"errors"
	"fmt"
)

// This file is the comm failure model: the typed errors the error-returning
// paths report, and the RankError wrapper World.RunErr attributes failures
// with. The legacy API panics on misuse (a deterministic protocol makes a
// mismatch a bug, not a race); the Try* forms and the Run* error-returning
// launchers convert the same conditions into errors so failure-aware callers
// (the session recovery loop, the chaos harness, a future network transport)
// can observe and recover from them instead of crashing.

// ErrInjectedFault is the default cause of a fault armed with InjectFault.
var ErrInjectedFault = errors.New("comm: injected fault")

// ErrTagMismatch reports a receive whose head message carried a different
// tag than expected — a protocol bug (or a stream poisoned by a fault).
var ErrTagMismatch = errors.New("comm: receive tag mismatch")

// ErrSizeMismatch reports a payload whose length does not match the
// caller-supplied destination buffer.
var ErrSizeMismatch = errors.New("comm: payload size mismatch")

// ErrAsyncBusy reports a Start* on an Async that already has an operation in
// flight (the pipelined executors keep a lookahead of exactly one).
var ErrAsyncBusy = errors.New("comm: async operation already in flight")

// ErrAsyncClosed reports a Start* on an Async after Close.
var ErrAsyncClosed = errors.New("comm: async runner closed")

// ErrPeerDisconnected reports a TCP peer whose connection failed or closed
// before an orderly goodbye — a killed or wedged rank process. Surfaced on
// every survivor as the cause of a *RankError naming the lost rank.
var ErrPeerDisconnected = errors.New("comm: peer disconnected")

// ErrPeerAborted reports that a TCP peer aborted its run and announced the
// failure over the wire; the wrapped text carries the peer's recorded cause.
var ErrPeerAborted = errors.New("comm: peer aborted")

// RankError is the typed failure World.RunErr (and the panicking Run
// wrapper) surfaces: which rank observed the failure, at which of its
// communication operations, and the underlying cause. Aborts raised outside
// any rank (an external World.Abort, a deadline, a cancelled context) carry
// Rank == -1.
type RankError struct {
	// Rank is the world rank that surfaced the failure (-1 when the abort
	// was raised from outside the rank goroutines).
	Rank int
	// Op is the rank's communication-operation sequence number within the
	// failed Run (1-based; 0 when unknown or not applicable).
	Op int64
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *RankError) Error() string {
	switch {
	case e.Rank < 0:
		return fmt.Sprintf("comm: run aborted: %v", e.Err)
	case e.Op > 0:
		return fmt.Sprintf("comm: rank %d failed at op %d: %v", e.Rank, e.Op, e.Err)
	default:
		return fmt.Sprintf("comm: rank %d failed: %v", e.Rank, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RankError) Unwrap() error { return e.Err }

// abortPanic is the internal unwind sentinel: a blocked or faulted
// communication primitive panics with it after the world has recorded the
// abort cause, and the rank goroutine's recovery in RunErr absorbs it
// (the cause is already on the world, so the unwind itself carries nothing).
type abortPanic struct{}

// IsAbortPanic reports whether a recovered panic value is the comm abort
// unwind sentinel. Executors that must clean up mid-unwind (draining a
// background comm worker) use it to distinguish an already-recorded abort
// from a fresh failure they still need to report via World.Abort.
func IsAbortPanic(e any) bool { _, ok := e.(abortPanic); return ok }

// toError converts a recovered panic value into an error.
func toError(e any) error {
	if err, ok := e.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", e)
}
