package comm

import "sync/atomic"

// Stats holds exact per-rank communication volume counters, the raw data
// behind the paper's Table 2 (average vs maximum send volume and the load
// imbalance between them).
type Stats struct {
	bytesSent []atomic.Int64
	bytesRecv []atomic.Int64
	msgsSent  []atomic.Int64
}

func newStats(p int) *Stats {
	return &Stats{
		bytesSent: make([]atomic.Int64, p),
		bytesRecv: make([]atomic.Int64, p),
		msgsSent:  make([]atomic.Int64, p),
	}
}

func (s *Stats) addSend(rank int, bytes, msgs int64) {
	s.bytesSent[rank].Add(bytes)
	s.msgsSent[rank].Add(msgs)
}

func (s *Stats) addRecv(rank int, bytes int64) {
	s.bytesRecv[rank].Add(bytes)
}

// BytesSent returns the bytes sent so far by rank.
func (s *Stats) BytesSent(rank int) int64 { return s.bytesSent[rank].Load() }

// BytesRecv returns the bytes received so far by rank.
func (s *Stats) BytesRecv(rank int) int64 { return s.bytesRecv[rank].Load() }

// MsgsSent returns the number of messages sent so far by rank.
func (s *Stats) MsgsSent(rank int) int64 { return s.msgsSent[rank].Load() }

// TotalSent sums bytes sent over all ranks.
func (s *Stats) TotalSent() int64 {
	var t int64
	for i := range s.bytesSent {
		t += s.bytesSent[i].Load()
	}
	return t
}

// TotalRecv sums bytes received over all ranks.
func (s *Stats) TotalRecv() int64 {
	var t int64
	for i := range s.bytesRecv {
		t += s.bytesRecv[i].Load()
	}
	return t
}

// MaxSent returns the largest per-rank send volume — the bottleneck metric
// the GVB partitioner minimizes.
func (s *Stats) MaxSent() int64 {
	var m int64
	for i := range s.bytesSent {
		if v := s.bytesSent[i].Load(); v > m {
			m = v
		}
	}
	return m
}

// AvgSent returns the mean per-rank send volume.
func (s *Stats) AvgSent() float64 {
	if len(s.bytesSent) == 0 {
		return 0
	}
	return float64(s.TotalSent()) / float64(len(s.bytesSent))
}

// LoadImbalance returns (max/avg − 1) of per-rank send volume, the
// percentage reported in Table 2 when multiplied by 100.
func (s *Stats) LoadImbalance() float64 {
	avg := s.AvgSent()
	if avg == 0 {
		return 0
	}
	return float64(s.MaxSent())/avg - 1
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for i := range s.bytesSent {
		s.bytesSent[i].Store(0)
		s.bytesRecv[i].Store(0)
		s.msgsSent[i].Store(0)
	}
}
