package comm

import (
	"sync/atomic"

	"sagnn/internal/machine"
)

// AllReduceVolume predicts the exact per-rank traffic one AllReduceSumInto
// of n float64 elements over a group of size members accounts to each
// participant — the numbers Stats measures, exported so schedule predictors
// that mix Plan.Volumes with explicit all-reduces (the sampled training
// loop's loss and gradient reductions) can match the executed ledger
// byte-exactly.
func AllReduceVolume(n, size int) (sentBytes, recvBytes, msgs int64) {
	if size <= 1 {
		return 0, 0, 0
	}
	nb := int64(n) * machine.BytesPerElem
	return nb, nb, int64(size - 1)
}

// Stats holds exact per-rank communication volume counters, the raw data
// behind the paper's Table 2 (average vs maximum send volume and the load
// imbalance between them).
type Stats struct {
	bytesSent []atomic.Int64
	bytesRecv []atomic.Int64
	msgsSent  []atomic.Int64
}

func newStats(p int) *Stats {
	return &Stats{
		bytesSent: make([]atomic.Int64, p),
		bytesRecv: make([]atomic.Int64, p),
		msgsSent:  make([]atomic.Int64, p),
	}
}

func (s *Stats) addSend(rank int, bytes, msgs int64) {
	s.bytesSent[rank].Add(bytes)
	s.msgsSent[rank].Add(msgs)
}

func (s *Stats) addRecv(rank int, bytes int64) {
	s.bytesRecv[rank].Add(bytes)
}

// BytesSent returns the bytes sent so far by rank.
func (s *Stats) BytesSent(rank int) int64 { return s.bytesSent[rank].Load() }

// BytesRecv returns the bytes received so far by rank.
func (s *Stats) BytesRecv(rank int) int64 { return s.bytesRecv[rank].Load() }

// MsgsSent returns the number of messages sent so far by rank.
func (s *Stats) MsgsSent(rank int) int64 { return s.msgsSent[rank].Load() }

// TotalSent sums bytes sent over all ranks.
func (s *Stats) TotalSent() int64 {
	var t int64
	for i := range s.bytesSent {
		t += s.bytesSent[i].Load()
	}
	return t
}

// TotalRecv sums bytes received over all ranks.
func (s *Stats) TotalRecv() int64 {
	var t int64
	for i := range s.bytesRecv {
		t += s.bytesRecv[i].Load()
	}
	return t
}

// MaxSent returns the largest per-rank send volume — the bottleneck metric
// the GVB partitioner minimizes.
func (s *Stats) MaxSent() int64 {
	var m int64
	for i := range s.bytesSent {
		if v := s.bytesSent[i].Load(); v > m {
			m = v
		}
	}
	return m
}

// AvgSent returns the mean per-rank send volume.
func (s *Stats) AvgSent() float64 {
	if len(s.bytesSent) == 0 {
		return 0
	}
	return float64(s.TotalSent()) / float64(len(s.bytesSent))
}

// LoadImbalance returns (max/avg − 1) of per-rank send volume, the
// percentage reported in Table 2 when multiplied by 100.
func (s *Stats) LoadImbalance() float64 {
	avg := s.AvgSent()
	if avg == 0 {
		return 0
	}
	return float64(s.MaxSent())/avg - 1
}

// VolumeSnapshot is an immutable copy of the volume counters, taken with
// Stats.Snapshot. Subtracting two snapshots isolates the traffic of one run
// on a long-lived world, so sessions report per-run volumes without
// resetting shared counters.
type VolumeSnapshot struct {
	sent, recv, msgs []int64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() *VolumeSnapshot {
	p := len(s.bytesSent)
	v := &VolumeSnapshot{
		sent: make([]int64, p),
		recv: make([]int64, p),
		msgs: make([]int64, p),
	}
	for i := 0; i < p; i++ {
		v.sent[i] = s.bytesSent[i].Load()
		v.recv[i] = s.bytesRecv[i].Load()
		v.msgs[i] = s.msgsSent[i].Load()
	}
	return v
}

// Sub returns the per-rank difference v − earlier: the traffic between the
// two snapshots. A nil earlier is treated as all zeros.
func (v *VolumeSnapshot) Sub(earlier *VolumeSnapshot) *VolumeSnapshot {
	d := &VolumeSnapshot{
		sent: append([]int64(nil), v.sent...),
		recv: append([]int64(nil), v.recv...),
		msgs: append([]int64(nil), v.msgs...),
	}
	if earlier != nil {
		for i := range d.sent {
			d.sent[i] -= earlier.sent[i]
			d.recv[i] -= earlier.recv[i]
			d.msgs[i] -= earlier.msgs[i]
		}
	}
	return d
}

// Add returns the per-rank sum v + other. A nil receiver acts as zero and
// returns other unchanged (sessions accumulate per-step deltas from nil).
func (v *VolumeSnapshot) Add(other *VolumeSnapshot) *VolumeSnapshot {
	if v == nil {
		return other
	}
	d := v.Sub(nil)
	if other != nil {
		for i := range d.sent {
			d.sent[i] += other.sent[i]
			d.recv[i] += other.recv[i]
			d.msgs[i] += other.msgs[i]
		}
	}
	return d
}

// BytesSent returns the bytes sent by rank in the snapshot.
func (v *VolumeSnapshot) BytesSent(rank int) int64 { return v.sent[rank] }

// BytesRecv returns the bytes received by rank in the snapshot.
func (v *VolumeSnapshot) BytesRecv(rank int) int64 { return v.recv[rank] }

// TotalSent sums bytes sent over all ranks.
func (v *VolumeSnapshot) TotalSent() int64 {
	var t int64
	for _, b := range v.sent {
		t += b
	}
	return t
}

// TotalRecv sums bytes received over all ranks.
func (v *VolumeSnapshot) TotalRecv() int64 {
	var t int64
	for _, b := range v.recv {
		t += b
	}
	return t
}

// MaxSent returns the largest per-rank send volume in the snapshot.
func (v *VolumeSnapshot) MaxSent() int64 {
	var m int64
	for _, b := range v.sent {
		if b > m {
			m = b
		}
	}
	return m
}

// AvgSent returns the mean per-rank send volume in the snapshot.
func (v *VolumeSnapshot) AvgSent() float64 {
	if len(v.sent) == 0 {
		return 0
	}
	return float64(v.TotalSent()) / float64(len(v.sent))
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for i := range s.bytesSent {
		s.bytesSent[i].Store(0)
		s.bytesRecv[i].Store(0)
		s.msgsSent[i].Store(0)
	}
}
