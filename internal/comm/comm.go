// Package comm is a simulated distributed communicator: it runs P ranks as
// goroutines in one process, moves real data between them (so algorithmic
// correctness is exercised end to end), measures exact per-rank
// communication volumes, and charges modeled α–β time to a machine.Ledger.
//
// It substitutes for the paper's NCCL/torch.distributed stack. The
// collectives mirror the operations the paper uses: broadcast (sparsity-
// oblivious 1D), all-to-allv (sparsity-aware 1D), point-to-point
// send/recv (sparsity-aware 1.5D), and all-reduce (1.5D partial-sum
// reduction and weight-gradient reduction).
//
// # Time accounting convention: the sender pays
//
// Point-to-point α–β time is charged entirely to the sending rank at send
// time (Send/SendOwned/SendInts take the phase to charge); the matching
// Recv/RecvInto/RecvInts only waits and records receive volume, charging
// nothing. This models the eager, non-blocking Isend the paper's NCCL
// grouped send/recv uses: injection cost is paid once on the wire, and a
// receiver that is late to post its receive shows up as idle time, not as
// double-counted transfer time. Collectives charge every participant their
// modeled share (each member of a broadcast, all-reduce, or all-to-allv
// calls with the phase to charge), because all members drive the
// collective's algorithm.
//
// # Failure model
//
// The world has a failure-aware execution mode (see fault.go): faults can be
// injected at named points in a rank's operation stream, any failure aborts
// the whole collective deterministically (every blocked primitive unwinds
// instead of deadlocking), and RunErr/RunCtx/RunTimeout return a typed
// *RankError. The legacy Run and the misuse panics below are thin wrappers
// kept for source compatibility; new failure-aware callers use the Try*
// forms and the error-returning launchers.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sagnn/internal/machine"
)

// MailboxDepth is the per-(src,dst) eager-send buffering: a sender never
// blocks until this many messages are in flight to a single receiver.
// Exported so the static plan verifier (distmm.Verify) can prove a compiled
// schedule's per-pair send bursts fit the buffering — the premise under
// which sends are modeled as non-blocking in the happens-before analysis.
const MailboxDepth = 64

// message is a tagged point-to-point payload.
type message struct {
	tag    int
	floats []float64
	ints   []int
}

// World owns the ranks, mailboxes, and accounting for one simulated job.
type World struct {
	P      int
	Params machine.Params
	Ledger *machine.Ledger
	stats  *Stats
	mail   [][]chan message // mail[dst][src]
	world  *Group
	pool   bufPool

	// net is the TCP backend when this world was built by NewWorldTCP; nil
	// selects the default in-process simulated transport. hosted lists the
	// world ranks running inside this process (every rank for the simulated
	// backend, exactly one for TCP): Run variants spawn goroutines only for
	// hosted ranks.
	net    *netWorld
	hosted []int

	// degrade holds per-rank comm-time multipliers (fault-priced time).
	degrade *machine.Degradation

	// ops counts communication operations per rank within the current Run;
	// fault sites are addressed in this coordinate. In overlap mode a rank
	// and its async worker advance the same counter concurrently, hence
	// atomics.
	ops []atomic.Int64

	// Abort protocol state: the first failure records its cause and closes
	// the abort channel every blocking primitive selects on. See fault.go.
	abortMu  sync.Mutex
	abortErr error
	abortCh  atomic.Pointer[abortState]

	faultMu    sync.Mutex
	faults     []Fault
	haveFaults atomic.Bool

	groupMu sync.Mutex
	groups  []*Group
}

// NewWorld creates a world of p ranks with the given machine parameters.
// Panics on a non-positive p: a construction-time misuse, not a runtime
// failure.
func NewWorld(p int, params machine.Params) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: world size %d", p))
	}
	w := &World{
		P:       p,
		Params:  params,
		Ledger:  machine.NewLedger(p),
		stats:   newStats(p),
		pool:    newBufPool(),
		degrade: machine.NewDegradation(p),
		ops:     make([]atomic.Int64, p),
	}
	w.abortCh.Store(&abortState{ch: make(chan struct{})})
	w.hosted = make([]int, p)
	for i := range w.hosted {
		w.hosted[i] = i
	}
	w.mail = make([][]chan message, p)
	for d := range w.mail {
		w.mail[d] = make([]chan message, p)
		for s := range w.mail[d] {
			w.mail[d][s] = make(chan message, MailboxDepth)
		}
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	w.world = w.NewGroup(members)
	return w
}

// Stats returns the world's volume counters.
func (w *World) Stats() *Stats { return w.stats }

// WorldGroup returns the group containing every rank.
func (w *World) WorldGroup() *Group { return w.world }

// NewGroup creates a communicator group over the given world ranks. Groups
// must be created before Run starts (they are shared state). Panics on
// out-of-range or duplicate members: construction-time misuse.
func (w *World) NewGroup(members []int) *Group {
	idx := make(map[int]int, len(members))
	for i, m := range members {
		if m < 0 || m >= w.P {
			panic(fmt.Sprintf("comm: group member %d outside world of %d", m, w.P))
		}
		if _, dup := idx[m]; dup {
			panic(fmt.Sprintf("comm: duplicate group member %d", m))
		}
		idx[m] = i
	}
	g := &Group{
		w:       w,
		members: append([]int(nil), members...),
		idx:     idx,
		bar:     newBarrier(len(members)),
		fslots:  make([][]float64, len(members)),
		vslots:  make([][][]float64, len(members)),
		islots:  make([][][]int, len(members)),
	}
	w.groupMu.Lock()
	w.groups = append(w.groups, g)
	w.groupMu.Unlock()
	return g
}

// Run executes fn once per rank, each in its own goroutine, and blocks
// until all return. Any failure is re-raised as a panic on the caller with
// its rank attached — the legacy form. Failure-aware callers use RunErr,
// RunCtx, or RunTimeout, which return the *RankError instead.
func (w *World) Run(fn func(r *Rank)) {
	if err := w.RunErr(func(r *Rank) error { fn(r); return nil }); err != nil {
		panic(err.Error())
	}
}

// Rank is one process's handle on the world.
type Rank struct {
	w  *World
	ID int
}

// World returns the rank's world.
func (r *Rank) World() *World { return r.w }

// P returns the world size.
func (r *Rank) P() int { return r.w.P }

// chargeTime credits modeled seconds to this rank in the given phase. An
// empty phase suppresses the charge: self-priced executors (the overlapped
// plan executor, which settles pipelined max(comm, comp) time in one bulk
// charge after the collective) pass "" so the inline per-operation charges
// do not double-count. Volume accounting is never suppressed.
func (r *Rank) chargeTime(phase string, sec float64) {
	if phase == "" {
		return
	}
	r.w.Ledger.Add(r.ID, phase, sec)
}

// chargeComm is chargeTime for communication seconds: the rank's current
// degradation factor (slow-link faults, SlowRank) scales the charge, so a
// degraded link is priced where a real one would be. Compute charges are
// never scaled.
func (r *Rank) chargeComm(phase string, sec float64) {
	if phase == "" {
		return
	}
	r.w.Ledger.Add(r.ID, phase, sec*r.w.degrade.Factor(r.ID))
}

// CommFactor returns this rank's current communication-time multiplier
// (1 when healthy). Self-priced executors that settle communication time in
// bulk apply it themselves, since their inline charges are suppressed.
func (r *Rank) CommFactor() float64 { return r.w.degrade.Factor(r.ID) }

// ChargeCompute credits modeled local-computation seconds (SpMM, GEMM,
// packing) to this rank. Algorithms call this with machine.Params-derived
// times.
func (r *Rank) ChargeCompute(phase string, sec float64) { r.chargeTime(phase, sec) }

// sendMsg enqueues m for dst, unwinding (an abortPanic panic, recovered by
// Run) if the world aborts while the mailbox is full. The fast path is a
// plain buffered-channel send. On the TCP backend the message is framed and
// handed to the peer's coalescing writer instead; wire sends never block.
func (w *World) sendMsg(dst, src int, m message) {
	if w.net != nil {
		w.net.sendMessage(dst, laneP2P, m)
		return
	}
	select {
	case w.mail[dst][src] <- m:
		return
	default:
	}
	select {
	case w.mail[dst][src] <- m:
	case <-w.abortCh.Load().ch:
		w.pool.put(m.floats)
		panic(abortPanic{})
	}
}

// recvMsg dequeues the next message from src for dst, unwinding (an
// abortPanic panic, recovered by Run) if the world aborts while the
// mailbox is empty. On the TCP backend it pops the (src, p2p-lane) inbox the
// reader goroutine lands decoded frames into.
func (w *World) recvMsg(dst, src int) message {
	if w.net != nil {
		return w.net.recvLane(src, laneP2P)
	}
	select {
	case m := <-w.mail[dst][src]:
		return m
	default:
	}
	select {
	case m := <-w.mail[dst][src]:
		return m
	case <-w.abortCh.Load().ch:
		panic(abortPanic{})
	}
}

// Send delivers a tagged float payload to dst. Models an eager/buffered
// send: it never blocks (mailboxes hold MailboxDepth in-flight messages per
// pair, far above the ≤1-per-Multiply the staged protocols use), matching
// the paper's use of non-blocking Isend. Self-sends panic: local data needs
// no transport.
//
// The payload is copied into a pooled transport buffer, so the caller keeps
// ownership of floats; the receiver owns the transport buffer (see Recv /
// RecvInto). To skip the copy entirely, pack into GetFloats and use
// SendOwned.
func (r *Rank) Send(dst, tag int, floats []float64, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported; use local data directly")
	}
	r.opPoint()
	var cp []float64
	if floats != nil {
		cp = r.w.pool.get(len(floats))
		copy(cp, floats)
	}
	r.sendOwned(dst, tag, cp, phase)
}

// SendOwned delivers a tagged float payload to dst without copying: the
// buffer itself (typically from GetFloats) travels to the receiver, which
// assumes ownership. The caller must not touch floats afterwards — this is
// the sender half of the pooled zero-copy path. Self-sends panic, as in
// Send.
func (r *Rank) SendOwned(dst, tag int, floats []float64, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported; use local data directly")
	}
	r.opPoint()
	r.sendOwned(dst, tag, floats, phase)
}

func (r *Rank) sendOwned(dst, tag int, floats []float64, phase string) {
	r.w.sendMsg(dst, r.ID, message{tag: tag, floats: floats})
	n := int64(len(floats)) * machine.BytesPerElem
	r.w.stats.addSend(r.ID, n, 1)
	r.chargeComm(phase, r.w.Params.P2PTime(n))
}

// SendInts delivers a tagged int payload to dst (used to exchange the
// NnzCols row-index lists during setup). Self-sends panic, as in Send.
func (r *Rank) SendInts(dst, tag int, ints []int, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported")
	}
	r.opPoint()
	cp := append([]int(nil), ints...)
	r.w.sendMsg(dst, r.ID, message{tag: tag, ints: cp})
	n := int64(len(ints)) * machine.BytesPerElem
	r.w.stats.addSend(r.ID, n, 1)
	r.chargeComm(phase, r.w.Params.P2PTime(n))
}

// TryRecv blocks until the next message from src arrives and returns its
// float payload, or a typed error (ErrTagMismatch) when the head message
// carries a different tag — the protocols in this repository are
// deterministic, so a mismatch is a bug, not a race. No time is charged: the
// sender already paid the message's full α–β cost (see the package comment).
//
// The returned buffer is owned by the caller: keep it indefinitely, or hand
// it back with PutFloats once done. For a zero-allocation steady state use
// RecvInto with a persistent workspace instead.
func (r *Rank) TryRecv(src, tag int) ([]float64, error) {
	r.opPoint()
	m := r.w.recvMsg(r.ID, src)
	if m.tag != tag {
		r.w.pool.put(m.floats)
		return nil, fmt.Errorf("%w: rank %d expected tag %d from %d, got %d", ErrTagMismatch, r.ID, tag, src, m.tag)
	}
	n := int64(len(m.floats)) * machine.BytesPerElem
	r.w.stats.addRecv(r.ID, n)
	return m.floats, nil
}

// Recv is TryRecv with the legacy contract: misuse panics.
func (r *Rank) Recv(src, tag int) []float64 {
	out, err := r.TryRecv(src, tag)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TryRecvInto blocks for the next message from src, copies its payload into
// dst, and recycles the transport buffer. A tag mismatch returns
// ErrTagMismatch; a payload whose length differs from dst returns
// ErrSizeMismatch. Volume accounting matches TryRecv exactly.
func (r *Rank) TryRecvInto(src, tag int, dst []float64) error {
	r.opPoint()
	m := r.w.recvMsg(r.ID, src)
	if m.tag != tag {
		r.w.pool.put(m.floats)
		return fmt.Errorf("%w: rank %d expected tag %d from %d, got %d", ErrTagMismatch, r.ID, tag, src, m.tag)
	}
	if len(m.floats) != len(dst) {
		r.w.pool.put(m.floats)
		return fmt.Errorf("%w: rank %d RecvInto dst len %d, payload len %d", ErrSizeMismatch, r.ID, len(dst), len(m.floats))
	}
	copy(dst, m.floats)
	n := int64(len(m.floats)) * machine.BytesPerElem
	r.w.stats.addRecv(r.ID, n)
	r.w.pool.put(m.floats)
	return nil
}

// RecvInto is TryRecvInto with the legacy contract: misuse panics.
func (r *Rank) RecvInto(src, tag int, dst []float64) {
	if err := r.TryRecvInto(src, tag, dst); err != nil {
		panic(err.Error())
	}
}

// TryRecvInts is TryRecv for int payloads.
func (r *Rank) TryRecvInts(src, tag int) ([]int, error) {
	r.opPoint()
	m := r.w.recvMsg(r.ID, src)
	if m.tag != tag {
		r.w.pool.put(m.floats)
		return nil, fmt.Errorf("%w: rank %d expected tag %d from %d, got %d", ErrTagMismatch, r.ID, tag, src, m.tag)
	}
	r.w.stats.addRecv(r.ID, int64(len(m.ints))*machine.BytesPerElem)
	return m.ints, nil
}

// RecvInts is TryRecvInts with the legacy contract: misuse panics.
func (r *Rank) RecvInts(src, tag int) []int {
	out, err := r.TryRecvInts(src, tag)
	if err != nil {
		panic(err.Error())
	}
	return out
}
