// Package comm is a simulated distributed communicator: it runs P ranks as
// goroutines in one process, moves real data between them (so algorithmic
// correctness is exercised end to end), measures exact per-rank
// communication volumes, and charges modeled α–β time to a machine.Ledger.
//
// It substitutes for the paper's NCCL/torch.distributed stack. The
// collectives mirror the operations the paper uses: broadcast (sparsity-
// oblivious 1D), all-to-allv (sparsity-aware 1D), point-to-point
// send/recv (sparsity-aware 1.5D), and all-reduce (1.5D partial-sum
// reduction and weight-gradient reduction).
//
// # Time accounting convention: the sender pays
//
// Point-to-point α–β time is charged entirely to the sending rank at send
// time (Send/SendOwned/SendInts take the phase to charge); the matching
// Recv/RecvInto/RecvInts only waits and records receive volume, charging
// nothing. This models the eager, non-blocking Isend the paper's NCCL
// grouped send/recv uses: injection cost is paid once on the wire, and a
// receiver that is late to post its receive shows up as idle time, not as
// double-counted transfer time. Collectives charge every participant their
// modeled share (each member of a broadcast, all-reduce, or all-to-allv
// calls with the phase to charge), because all members drive the
// collective's algorithm.
package comm

import (
	"fmt"
	"sync"

	"sagnn/internal/machine"
)

// message is a tagged point-to-point payload.
type message struct {
	tag    int
	floats []float64
	ints   []int
}

// World owns the ranks, mailboxes, and accounting for one simulated job.
type World struct {
	P      int
	Params machine.Params
	Ledger *machine.Ledger
	stats  *Stats
	mail   [][]chan message // mail[dst][src]
	world  *Group
	pool   bufPool
}

// NewWorld creates a world of p ranks with the given machine parameters.
func NewWorld(p int, params machine.Params) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: world size %d", p))
	}
	w := &World{
		P:      p,
		Params: params,
		Ledger: machine.NewLedger(p),
		stats:  newStats(p),
		pool:   newBufPool(),
	}
	w.mail = make([][]chan message, p)
	for d := range w.mail {
		w.mail[d] = make([]chan message, p)
		for s := range w.mail[d] {
			w.mail[d][s] = make(chan message, 64)
		}
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	w.world = w.NewGroup(members)
	return w
}

// Stats returns the world's volume counters.
func (w *World) Stats() *Stats { return w.stats }

// WorldGroup returns the group containing every rank.
func (w *World) WorldGroup() *Group { return w.world }

// NewGroup creates a communicator group over the given world ranks. Groups
// must be created before Run starts (they are shared state).
func (w *World) NewGroup(members []int) *Group {
	idx := make(map[int]int, len(members))
	for i, m := range members {
		if m < 0 || m >= w.P {
			panic(fmt.Sprintf("comm: group member %d outside world of %d", m, w.P))
		}
		if _, dup := idx[m]; dup {
			panic(fmt.Sprintf("comm: duplicate group member %d", m))
		}
		idx[m] = i
	}
	return &Group{
		w:       w,
		members: append([]int(nil), members...),
		idx:     idx,
		bar:     newBarrier(len(members)),
		fslots:  make([][]float64, len(members)),
		vslots:  make([][][]float64, len(members)),
		islots:  make([][][]int, len(members)),
	}
}

// Run executes fn once per rank, each in its own goroutine, and blocks
// until all return. Any rank panic is re-raised on the caller with its rank
// attached.
func (w *World) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make(chan any, w.P)
	for id := 0; id < w.P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics <- fmt.Sprintf("rank %d: %v", id, e)
				}
			}()
			fn(&Rank{w: w, ID: id})
		}(id)
	}
	wg.Wait()
	select {
	case e := <-panics:
		panic(e)
	default:
	}
}

// Rank is one process's handle on the world.
type Rank struct {
	w  *World
	ID int
}

// World returns the rank's world.
func (r *Rank) World() *World { return r.w }

// P returns the world size.
func (r *Rank) P() int { return r.w.P }

// chargeTime credits modeled seconds to this rank in the given phase. An
// empty phase suppresses the charge: self-priced executors (the overlapped
// plan executor, which settles pipelined max(comm, comp) time in one bulk
// charge after the collective) pass "" so the inline per-operation charges
// do not double-count. Volume accounting is never suppressed.
func (r *Rank) chargeTime(phase string, sec float64) {
	if phase == "" {
		return
	}
	r.w.Ledger.Add(r.ID, phase, sec)
}

// ChargeCompute credits modeled local-computation seconds (SpMM, GEMM,
// packing) to this rank. Algorithms call this with machine.Params-derived
// times.
func (r *Rank) ChargeCompute(phase string, sec float64) { r.chargeTime(phase, sec) }

// Send delivers a tagged float payload to dst. Models an eager/buffered
// send: it never blocks (mailboxes hold 64 in-flight messages per pair, far above the ≤1-per-Multiply the staged protocols use), matching the paper's use of
// non-blocking Isend.
//
// The payload is copied into a pooled transport buffer, so the caller keeps
// ownership of floats; the receiver owns the transport buffer (see Recv /
// RecvInto). To skip the copy entirely, pack into GetFloats and use
// SendOwned.
func (r *Rank) Send(dst, tag int, floats []float64, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported; use local data directly")
	}
	var cp []float64
	if floats != nil {
		cp = r.w.pool.get(len(floats))
		copy(cp, floats)
	}
	r.sendOwned(dst, tag, cp, phase)
}

// SendOwned delivers a tagged float payload to dst without copying: the
// buffer itself (typically from GetFloats) travels to the receiver, which
// assumes ownership. The caller must not touch floats afterwards — this is
// the sender half of the pooled zero-copy path.
func (r *Rank) SendOwned(dst, tag int, floats []float64, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported; use local data directly")
	}
	r.sendOwned(dst, tag, floats, phase)
}

func (r *Rank) sendOwned(dst, tag int, floats []float64, phase string) {
	r.w.mail[dst][r.ID] <- message{tag: tag, floats: floats}
	n := int64(len(floats)) * machine.BytesPerElem
	r.w.stats.addSend(r.ID, n, 1)
	r.chargeTime(phase, r.w.Params.P2PTime(n))
}

// SendInts delivers a tagged int payload to dst (used to exchange the
// NnzCols row-index lists during setup).
func (r *Rank) SendInts(dst, tag int, ints []int, phase string) {
	if dst == r.ID {
		panic("comm: self-send not supported")
	}
	cp := append([]int(nil), ints...)
	r.w.mail[dst][r.ID] <- message{tag: tag, ints: cp}
	n := int64(len(ints)) * machine.BytesPerElem
	r.w.stats.addSend(r.ID, n, 1)
	r.chargeTime(phase, r.w.Params.P2PTime(n))
}

// Recv blocks until the next message from src arrives and returns its float
// payload. The tag must match the head message — the protocols in this
// repository are deterministic, so a mismatch is a bug, not a race. No time
// is charged: the sender already paid the message's full α–β cost (see the
// package comment).
//
// The returned buffer is owned by the caller: keep it indefinitely, or hand
// it back with PutFloats once done. For a zero-allocation steady state use
// RecvInto with a persistent workspace instead.
func (r *Rank) Recv(src, tag int) []float64 {
	m := <-r.w.mail[r.ID][src]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.ID, tag, src, m.tag))
	}
	n := int64(len(m.floats)) * machine.BytesPerElem
	r.w.stats.addRecv(r.ID, n)
	return m.floats
}

// RecvInto blocks for the next message from src, copies its payload into
// dst (whose length must equal the payload length), and recycles the
// transport buffer. Volume accounting matches Recv exactly.
func (r *Rank) RecvInto(src, tag int, dst []float64) {
	m := <-r.w.mail[r.ID][src]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.ID, tag, src, m.tag))
	}
	if len(m.floats) != len(dst) {
		panic(fmt.Sprintf("comm: rank %d RecvInto dst len %d, payload len %d", r.ID, len(dst), len(m.floats)))
	}
	copy(dst, m.floats)
	n := int64(len(m.floats)) * machine.BytesPerElem
	r.w.stats.addRecv(r.ID, n)
	r.w.pool.put(m.floats)
}

// RecvInts is Recv for int payloads.
func (r *Rank) RecvInts(src, tag int) []int {
	m := <-r.w.mail[r.ID][src]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", r.ID, tag, src, m.tag))
	}
	r.w.stats.addRecv(r.ID, int64(len(m.ints))*machine.BytesPerElem)
	return m.ints
}
