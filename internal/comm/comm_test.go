package comm

import (
	"math"
	"sync"
	"testing"

	"sagnn/internal/machine"
)

func testWorld(p int) *World { return NewWorld(p, machine.Perlmutter()) }

func TestRunAllRanksExecute(t *testing.T) {
	w := testWorld(8)
	var mu sync.Mutex
	seen := map[int]bool{}
	w.Run(func(r *Rank) {
		mu.Lock()
		seen[r.ID] = true
		mu.Unlock()
	})
	if len(seen) != 8 {
		t.Fatalf("ranks seen: %d", len(seen))
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := testWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic propagation")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
	})
}

func TestSendRecv(t *testing.T) {
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, []float64{1, 2, 3}, "p2p")
		} else {
			got := r.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				panic("bad payload")
			}
		}
	})
	if w.Stats().BytesSent(0) != 3*machine.BytesPerElem {
		t.Fatalf("sent bytes %d", w.Stats().BytesSent(0))
	}
	if w.Stats().BytesRecv(1) != 3*machine.BytesPerElem {
		t.Fatalf("recv bytes %d", w.Stats().BytesRecv(1))
	}
	if w.Stats().MsgsSent(0) != 1 {
		t.Fatal("message count")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{42}
			r.Send(1, 0, buf, "p2p")
			buf[0] = -1 // mutate after send; receiver must still see 42
		} else {
			got := r.Recv(0, 0)
			if got[0] != 42 {
				panic("send did not copy payload")
			}
		}
	})
}

func TestSendIntsRecvInts(t *testing.T) {
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendInts(1, 3, []int{9, 8}, "setup")
		} else {
			got := r.RecvInts(0, 3)
			if len(got) != 2 || got[0] != 9 {
				panic("bad int payload")
			}
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := testWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected tag mismatch panic")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, []float64{1}, "p2p")
		} else {
			r.Recv(0, 2)
		}
	})
}

func TestBcast(t *testing.T) {
	w := testWorld(4)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		var data []float64
		if r.ID == 2 {
			data = []float64{3.14, 2.71}
		}
		got := g.BcastFloats(r, 2, data, "bcast")
		if len(got) != 2 || got[0] != 3.14 {
			panic("bcast payload wrong")
		}
	})
	// root sent once, others received
	if w.Stats().BytesSent(2) == 0 {
		t.Fatal("root send not counted")
	}
	if w.Stats().BytesRecv(0) != 2*machine.BytesPerElem {
		t.Fatal("non-root recv not counted")
	}
	if w.Ledger.PhaseMax("bcast") <= 0 {
		t.Fatal("bcast time not charged")
	}
}

func TestBcastRepeated(t *testing.T) {
	// Two bcasts in a row exercise slot retirement.
	w := testWorld(3)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		for round := 0; round < 5; round++ {
			var data []float64
			root := round % 3
			if r.ID == root {
				data = []float64{float64(round)}
			}
			got := g.BcastFloats(r, root, data, "bcast")
			if got[0] != float64(round) {
				panic("wrong round data")
			}
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	w := testWorld(4)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		v := []float64{float64(r.ID), 1}
		out := g.AllReduceSum(r, v, "allreduce")
		if out[0] != 6 || out[1] != 4 { // 0+1+2+3, 1*4
			panic("allreduce wrong")
		}
	})
	if w.Ledger.PhaseMax("allreduce") <= 0 {
		t.Fatal("allreduce time not charged")
	}
}

func TestAllGatherFloats(t *testing.T) {
	w := testWorld(3)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		mine := make([]float64, r.ID+1) // variable lengths
		for i := range mine {
			mine[i] = float64(r.ID)
		}
		all := g.AllGatherFloats(r, mine, "gather")
		for j := 0; j < 3; j++ {
			if len(all[j]) != j+1 {
				panic("allgather lengths wrong")
			}
			for _, v := range all[j] {
				if v != float64(j) {
					panic("allgather values wrong")
				}
			}
		}
	})
}

func TestAllToAllvExchangeAndConservation(t *testing.T) {
	w := testWorld(4)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]float64, 4)
		for j := 0; j < 4; j++ {
			// send j copies of my id to rank j
			send[j] = make([]float64, j)
			for k := range send[j] {
				send[j][k] = float64(r.ID)
			}
		}
		recv := g.AllToAllv(r, send, "alltoall")
		for j := 0; j < 4; j++ {
			if len(recv[j]) != r.ID {
				panic("alltoallv shape wrong")
			}
			for _, v := range recv[j] {
				if v != float64(j) {
					panic("alltoallv value wrong")
				}
			}
		}
	})
	if w.Stats().TotalSent() != w.Stats().TotalRecv() {
		t.Fatalf("conservation violated: sent %d recv %d",
			w.Stats().TotalSent(), w.Stats().TotalRecv())
	}
}

func TestAllToAllvInts(t *testing.T) {
	w := testWorld(2)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := [][]int{nil, nil}
		send[1-r.ID] = []int{r.ID * 10}
		recv := g.AllToAllvInts(r, send, "setup")
		if recv[1-r.ID][0] != (1-r.ID)*10 {
			panic("ints exchange wrong")
		}
	})
}

func TestSubGroups(t *testing.T) {
	// 4 ranks in a 2x2 grid: row groups {0,1},{2,3}; allreduce within rows.
	w := testWorld(4)
	rows := []*Group{w.NewGroup([]int{0, 1}), w.NewGroup([]int{2, 3})}
	w.Run(func(r *Rank) {
		g := rows[r.ID/2]
		out := g.AllReduceSum(r, []float64{1}, "allreduce")
		if out[0] != 2 {
			panic("row allreduce wrong")
		}
	})
}

func TestGroupIndexOfPanicsForOutsider(t *testing.T) {
	w := testWorld(2)
	g := w.NewGroup([]int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			g.IndexOf(r)
		}
	})
}

func TestStatsImbalance(t *testing.T) {
	s := newStats(2)
	s.addSend(0, 100, 1)
	s.addSend(1, 300, 1)
	if s.MaxSent() != 300 {
		t.Fatal("MaxSent")
	}
	if s.AvgSent() != 200 {
		t.Fatal("AvgSent")
	}
	if math.Abs(s.LoadImbalance()-0.5) > 1e-12 {
		t.Fatalf("imbalance %v want 0.5", s.LoadImbalance())
	}
	s.Reset()
	if s.TotalSent() != 0 || s.LoadImbalance() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSelfSendPanics(t *testing.T) {
	w := testWorld(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(r *Rank) {
		r.Send(0, 0, nil, "p2p")
	})
}

func TestBarrierManyRounds(t *testing.T) {
	w := testWorld(6)
	g := w.WorldGroup()
	counter := make([]int, 6)
	w.Run(func(r *Rank) {
		for i := 0; i < 50; i++ {
			counter[r.ID]++
			g.Barrier(r)
			// after barrier every rank must have incremented i+1 times
			for j := 0; j < 6; j++ {
				if counter[j] != i+1 {
					panic("barrier did not synchronize")
				}
			}
			g.Barrier(r)
		}
	})
}
