package comm

import (
	"fmt"

	"sagnn/internal/machine"
)

// Group is a communicator over a subset of world ranks (a process row or
// column in the 1.5D grid, or the whole world). All collectives must be
// entered by every member, in the same order — MPI semantics.
type Group struct {
	w       *World
	members []int
	idx     map[int]int // world rank -> group index
	bar     *barrier
	slots   []any
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the world ranks in group order.
func (g *Group) Members() []int { return append([]int(nil), g.members...) }

// IndexOf returns r's position within the group; panics if not a member.
func (g *Group) IndexOf(r *Rank) int {
	i, ok := g.idx[r.ID]
	if !ok {
		panic(fmt.Sprintf("comm: rank %d not in group %v", r.ID, g.members))
	}
	return i
}

// Barrier synchronises all members.
func (g *Group) Barrier(r *Rank) {
	g.IndexOf(r)
	g.bar.wait()
}

// publish places data in the caller's slot and waits for all members.
func (g *Group) publish(r *Rank, data any) {
	g.slots[g.IndexOf(r)] = data
	g.bar.wait()
}

// retire waits for all members to finish reading, then clears the caller's
// slot so the next collective starts clean.
func (g *Group) retire(r *Rank) {
	g.bar.wait()
	g.slots[g.IndexOf(r)] = nil
}

// BcastFloats broadcasts root's (group-index) payload to every member and
// returns each member's own copy. Charged as a pipelined-tree broadcast.
func (g *Group) BcastFloats(r *Rank, root int, data []float64, phase string) []float64 {
	me := g.IndexOf(r)
	var payload any
	if me == root {
		payload = data
	}
	g.publish(r, payload)
	src := g.slots[root].([]float64)
	out := append([]float64(nil), src...)
	nBytes := int64(len(src)) * machine.BytesPerElem
	if me == root {
		g.w.stats.addSend(r.ID, nBytes, 1)
	} else {
		g.w.stats.addRecv(r.ID, nBytes)
	}
	r.chargeTime(phase, g.w.Params.BcastTime(nBytes, g.Size()))
	g.retire(r)
	return out
}

// AllReduceSum element-wise sums each member's vector and returns the
// reduced vector to all. Vectors must share a length. Charged as a ring
// all-reduce.
func (g *Group) AllReduceSum(r *Rank, data []float64, phase string) []float64 {
	g.publish(r, data)
	out := make([]float64, len(data))
	for i := range g.members {
		v := g.slots[i].([]float64)
		if len(v) != len(data) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(v), len(data)))
		}
		for j, x := range v {
			out[j] += x
		}
	}
	nBytes := int64(len(data)) * machine.BytesPerElem
	ringVol := nBytes // ring all-reduce moves ~2n bytes; modeled in AllReduceTime
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ringVol, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, ringVol)
	}
	r.chargeTime(phase, g.w.Params.AllReduceTime(nBytes, g.Size()))
	g.retire(r)
	return out
}

// AllGatherFloats concatenates each member's variable-length contribution
// in group order and returns the slices per contributor. Charged as a ring
// all-gather of the concatenated size.
func (g *Group) AllGatherFloats(r *Rank, data []float64, phase string) [][]float64 {
	g.publish(r, data)
	out := make([][]float64, g.Size())
	var total int64
	for i := range g.members {
		v := g.slots[i].([]float64)
		out[i] = append([]float64(nil), v...)
		total += int64(len(v))
	}
	totalBytes := total * machine.BytesPerElem
	ownBytes := int64(len(data)) * machine.BytesPerElem
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ownBytes, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, totalBytes-ownBytes)
	}
	r.chargeTime(phase, g.w.Params.AllGatherTime(totalBytes, g.Size()))
	g.retire(r)
	return out
}

// AllToAllv performs a personalized exchange: send[j] goes to group member
// j; the result's element j is what member j sent to the caller. Charged as
// grouped point-to-point traffic — one latency per communicating partner
// plus serialized send+recv bandwidth, the model the paper uses for NCCL's
// grouped ncclSend/ncclRecv all-to-all.
func (g *Group) AllToAllv(r *Rank, send [][]float64, phase string) [][]float64 {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("comm: alltoallv send has %d buckets for group of %d", len(send), g.Size()))
	}
	me := g.IndexOf(r)
	g.publish(r, send)
	out := make([][]float64, g.Size())
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		theirs := g.slots[j].([][]float64)
		out[j] = append([]float64(nil), theirs[me]...)
		if j != me {
			recvElems += int64(len(theirs[me]))
			sendElems += int64(len(send[j]))
			if len(theirs[me]) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
	}
	sendBytes := sendElems * machine.BytesPerElem
	recvBytes := recvElems * machine.BytesPerElem
	g.w.stats.addSend(r.ID, sendBytes, int64(partners))
	g.w.stats.addRecv(r.ID, recvBytes)
	r.chargeTime(phase, g.w.Params.AllToAllvTime(sendBytes, recvBytes, partners))
	g.retire(r)
	return out
}

// AllToAllvInts is AllToAllv for int payloads (the NnzCols index exchange
// during sparsity-aware setup).
func (g *Group) AllToAllvInts(r *Rank, send [][]int, phase string) [][]int {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("comm: alltoallv send has %d buckets for group of %d", len(send), g.Size()))
	}
	me := g.IndexOf(r)
	g.publish(r, send)
	out := make([][]int, g.Size())
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		theirs := g.slots[j].([][]int)
		out[j] = append([]int(nil), theirs[me]...)
		if j != me {
			recvElems += int64(len(theirs[me]))
			sendElems += int64(len(send[j]))
			if len(theirs[me]) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
	}
	g.w.stats.addSend(r.ID, sendElems*machine.BytesPerElem, int64(partners))
	g.w.stats.addRecv(r.ID, recvElems*machine.BytesPerElem)
	r.chargeTime(phase, g.w.Params.AllToAllvTime(sendElems*machine.BytesPerElem, recvElems*machine.BytesPerElem, partners))
	g.retire(r)
	return out
}
