package comm

import (
	"fmt"

	"sagnn/internal/machine"
)

// Group is a communicator over a subset of world ranks (a process row or
// column in the 1.5D grid, or the whole world). All collectives must be
// entered by every member, in the same order — MPI semantics.
//
// Exchange slots are typed per payload shape ([]float64, [][]float64,
// [][]int) rather than held as `any`: storing a slice header in an
// interface boxes it on the heap, which would put one allocation in every
// collective of the steady-state training loop.
type Group struct {
	w       *World
	members []int
	idx     map[int]int // world rank -> group index
	bar     *barrier
	fslots  [][]float64   // bcast / allreduce / allgather payloads
	vslots  [][][]float64 // alltoallv payloads
	islots  [][][]int     // alltoallv int payloads (setup only)
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the world ranks in group order.
func (g *Group) Members() []int { return append([]int(nil), g.members...) }

// Member returns the world rank at group index i. Unlike Members it does not
// copy, so schedule walkers (the static plan verifier, the cost models) can
// resolve group shapes without allocating.
func (g *Group) Member(i int) int { return g.members[i] }

// Index returns worldRank's position within the group and whether it is a
// member — the non-panicking lookup static verification uses where IndexOf
// would enforce the runtime misuse contract.
func (g *Group) Index(worldRank int) (int, bool) {
	i, ok := g.idx[worldRank]
	return i, ok
}

// IndexOf returns r's position within the group; panics if not a member.
func (g *Group) IndexOf(r *Rank) int {
	i, ok := g.idx[r.ID]
	if !ok {
		panic(fmt.Sprintf("comm: rank %d not in group %v", r.ID, g.members))
	}
	return i
}

// Barrier synchronises all members.
func (g *Group) Barrier(r *Rank) {
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		g.netBarrier(r, me)
		return
	}
	g.bar.wait()
}

// reset clears every member's exchange slots and re-arms the barrier after
// an aborted run (an abort can strand published payloads in the slots).
// Called from World.reset once all ranks have unwound.
func (g *Group) reset() {
	g.bar.reset()
	for i := range g.members {
		g.fslots[i] = nil
		g.vslots[i] = nil
		g.islots[i] = nil
	}
}

// retire waits for all members to finish reading, then clears the caller's
// slots so the next collective starts clean.
func (g *Group) retire(r *Rank) {
	g.bar.wait()
	me := g.IndexOf(r)
	g.fslots[me] = nil
	g.vslots[me] = nil
	g.islots[me] = nil
}

// BcastFloats broadcasts root's (group-index) payload to every member and
// returns each member's own copy. Charged as a pipelined-tree broadcast.
func (g *Group) BcastFloats(r *Rank, root int, data []float64, phase string) []float64 {
	return g.bcastFloats(r, root, data, nil, false, phase)
}

// BcastFloatsInto is BcastFloats copying into a caller-supplied workspace
// (whose length must equal the payload length) instead of allocating; it
// returns dst. Volume accounting and time charges match BcastFloats.
func (g *Group) BcastFloatsInto(r *Rank, root int, data, dst []float64, phase string) []float64 {
	return g.bcastFloats(r, root, data, dst, true, phase)
}

// bcastFloats is the shared broadcast body; a mis-sized dst panics (shape
// misuse is a caller bug, per the collective contract).
func (g *Group) bcastFloats(r *Rank, root int, data, dst []float64, useDst bool, phase string) []float64 {
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		return g.netBcastFloats(r, me, root, data, dst, useDst, phase)
	}
	if me == root {
		g.fslots[me] = data
	}
	g.bar.wait()
	src := g.fslots[root]
	if useDst {
		if len(dst) != len(src) {
			panic(fmt.Sprintf("comm: bcast dst len %d, payload len %d", len(dst), len(src)))
		}
	} else {
		dst = make([]float64, len(src))
	}
	copy(dst, src)
	nBytes := int64(len(src)) * machine.BytesPerElem
	if me == root {
		g.w.stats.addSend(r.ID, nBytes, 1)
	} else {
		g.w.stats.addRecv(r.ID, nBytes)
	}
	r.chargeComm(phase, g.w.Params.BcastTime(nBytes, g.Size()))
	g.retire(r)
	return dst
}

// AllReduceSum element-wise sums each member's vector and returns the
// reduced vector to all. Vectors must share a length. Charged as a ring
// all-reduce.
func (g *Group) AllReduceSum(r *Rank, data []float64, phase string) []float64 {
	out := make([]float64, len(data))
	g.AllReduceSumInto(r, data, out, phase)
	return out
}

// AllReduceSumInto is AllReduceSum reducing into a caller-supplied vector.
// out must have data's length and must not alias any member's published
// input (members read each other's inputs while writing their own out);
// either misuse panics.
func (g *Group) AllReduceSumInto(r *Rank, data, out []float64, phase string) {
	if len(out) != len(data) {
		panic(fmt.Sprintf("comm: allreduce out len %d, data len %d", len(out), len(data)))
	}
	if len(data) > 0 && &out[0] == &data[0] {
		panic("comm: AllReduceSumInto out must not alias data")
	}
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		g.netAllReduceSum(r, me, data, out, phase)
		return
	}
	g.fslots[me] = data
	g.bar.wait()
	for j := range out {
		out[j] = 0
	}
	for i := range g.members {
		v := g.fslots[i]
		if len(v) != len(data) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(v), len(data)))
		}
		for j, x := range v {
			out[j] += x
		}
	}
	nBytes := int64(len(data)) * machine.BytesPerElem
	ringVol := nBytes // ring all-reduce moves ~2n bytes; modeled in AllReduceTime
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ringVol, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, ringVol)
	}
	r.chargeComm(phase, g.w.Params.AllReduceTime(nBytes, g.Size()))
	g.retire(r)
}

// AllGatherFloats concatenates each member's variable-length contribution
// in group order and returns the slices per contributor. Charged as a ring
// all-gather of the concatenated size.
func (g *Group) AllGatherFloats(r *Rank, data []float64, phase string) [][]float64 {
	return g.allGatherFloats(r, data, nil, phase)
}

// AllGatherFloatsInto is AllGatherFloats copying into caller-supplied
// per-contributor workspaces: dst[i] must have the length of member i's
// contribution (shape misuse panics). Returns dst.
func (g *Group) AllGatherFloatsInto(r *Rank, data []float64, dst [][]float64, phase string) [][]float64 {
	if len(dst) != g.Size() {
		panic(fmt.Sprintf("comm: allgather dst has %d buckets for group of %d", len(dst), g.Size()))
	}
	return g.allGatherFloats(r, data, dst, phase)
}

// allGatherFloats is the shared all-gather body; mis-sized caller-supplied
// workspaces panic (shape misuse is a caller bug).
func (g *Group) allGatherFloats(r *Rank, data []float64, dst [][]float64, phase string) [][]float64 {
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		return g.netAllGatherFloats(r, me, data, dst, phase)
	}
	g.fslots[me] = data
	g.bar.wait()
	alloc := dst == nil
	if alloc {
		dst = make([][]float64, g.Size())
	}
	var total int64
	for i := range g.members {
		v := g.fslots[i]
		if alloc {
			dst[i] = append([]float64(nil), v...)
		} else {
			if len(dst[i]) != len(v) {
				panic(fmt.Sprintf("comm: allgather dst[%d] len %d, contribution len %d", i, len(dst[i]), len(v)))
			}
			copy(dst[i], v)
		}
		total += int64(len(v))
	}
	totalBytes := total * machine.BytesPerElem
	ownBytes := int64(len(data)) * machine.BytesPerElem
	if g.Size() > 1 {
		g.w.stats.addSend(r.ID, ownBytes, int64(g.Size()-1))
		g.w.stats.addRecv(r.ID, totalBytes-ownBytes)
	}
	r.chargeComm(phase, g.w.Params.AllGatherTime(totalBytes, g.Size()))
	g.retire(r)
	return dst
}

// AllToAllv performs a personalized exchange: send[j] goes to group member
// j; the result's element j is what member j sent to the caller. Charged as
// grouped point-to-point traffic — one latency per communicating partner
// plus serialized send+recv bandwidth, the model the paper uses for NCCL's
// grouped ncclSend/ncclRecv all-to-all.
func (g *Group) AllToAllv(r *Rank, send [][]float64, phase string) [][]float64 {
	return g.allToAllv(r, send, nil, phase)
}

// AllToAllvInto is AllToAllv copying into caller-supplied workspaces:
// recv[j] must have the length of what member j sends to the caller (zero
// for silent partners); shape misuse panics. Returns recv. Volume
// accounting and time charges match AllToAllv.
func (g *Group) AllToAllvInto(r *Rank, send, recv [][]float64, phase string) [][]float64 {
	if len(recv) != g.Size() {
		panic(fmt.Sprintf("comm: alltoallv recv has %d buckets for group of %d", len(recv), g.Size()))
	}
	return g.allToAllv(r, send, recv, phase)
}

// allToAllv is the shared exchange body; mis-sized send or recv buckets
// panic (shape misuse is a caller bug).
func (g *Group) allToAllv(r *Rank, send, recv [][]float64, phase string) [][]float64 {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("comm: alltoallv send has %d buckets for group of %d", len(send), g.Size()))
	}
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		return g.netAllToAllv(r, me, send, recv, phase)
	}
	g.vslots[me] = send
	g.bar.wait()
	alloc := recv == nil
	if alloc {
		recv = make([][]float64, g.Size())
	}
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		theirs := g.vslots[j][me]
		if alloc {
			recv[j] = append([]float64(nil), theirs...)
		} else {
			if len(recv[j]) != len(theirs) {
				panic(fmt.Sprintf("comm: alltoallv recv[%d] len %d, payload len %d", j, len(recv[j]), len(theirs)))
			}
			copy(recv[j], theirs)
		}
		if j != me {
			recvElems += int64(len(theirs))
			sendElems += int64(len(send[j]))
			if len(theirs) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
	}
	sendBytes := sendElems * machine.BytesPerElem
	recvBytes := recvElems * machine.BytesPerElem
	g.w.stats.addSend(r.ID, sendBytes, int64(partners))
	g.w.stats.addRecv(r.ID, recvBytes)
	r.chargeComm(phase, g.w.Params.AllToAllvTime(sendBytes, recvBytes, partners))
	g.retire(r)
	return recv
}

// AllToAllvInts is AllToAllv for int payloads (the NnzCols index exchange
// during sparsity-aware setup); a mis-sized send panics.
func (g *Group) AllToAllvInts(r *Rank, send [][]int, phase string) [][]int {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("comm: alltoallv send has %d buckets for group of %d", len(send), g.Size()))
	}
	me := g.IndexOf(r)
	r.opPoint()
	if g.w.net != nil {
		return g.netAllToAllvInts(r, me, send, phase)
	}
	g.islots[me] = send
	g.bar.wait()
	out := make([][]int, g.Size())
	var sendElems, recvElems int64
	partners := 0
	for j := range g.members {
		theirs := g.islots[j]
		out[j] = append([]int(nil), theirs[me]...)
		if j != me {
			recvElems += int64(len(theirs[me]))
			sendElems += int64(len(send[j]))
			if len(theirs[me]) > 0 || len(send[j]) > 0 {
				partners++
			}
		}
	}
	g.w.stats.addSend(r.ID, sendElems*machine.BytesPerElem, int64(partners))
	g.w.stats.addRecv(r.ID, recvElems*machine.BytesPerElem)
	r.chargeComm(phase, g.w.Params.AllToAllvTime(sendElems*machine.BytesPerElem, recvElems*machine.BytesPerElem, partners))
	g.retire(r)
	return out
}
