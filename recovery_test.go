package sagnn

import (
	"context"
	"errors"
	"testing"
	"time"

	"sagnn/internal/comm"
	"sagnn/internal/gcn"
)

// This file pins the end-to-end recovery acceptance criteria: a Session.Run
// with recovery enabled converges to losses bit-identical to a fault-free
// run once the injected fault clears, context cancellation aborts an
// in-flight epoch (not just epoch boundaries), and an unrecovered fault
// surfaces as a typed error that leaves the session restorable.

// TestSessionAutoRecoveryBitIdentical injects transient comm faults into a
// recovering session — one before the run starts and one mid-run from an
// epoch callback — and requires the final loss history to match a
// fault-free run bit for bit.
func TestSessionAutoRecoveryBitIdentical(t *testing.T) {
	ds := MustLoadDataset(ProteinSim, 42, 64)
	const epochs = 6

	baseline, _ := trainSessionPath(t, ds, 4, SparsityAware1D, NewGVB(42), epochs, 7)

	cluster, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cluster.Distribute(ds, DistOpts{Algorithm: SparsityAware1D, Partitioner: NewGVB(42)})
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	sess, err := dg.NewSession(ModelConfig{Seed: 7},
		WithRecovery(3, time.Millisecond),
		WithAutoSnapshot(2),
		WithEpochCallback(func(e EpochResult) error {
			// A second transient fault mid-run: fires during the next
			// epoch's launch, forcing a rollback to the last auto-snapshot.
			if e.Epoch == 2 && !injected {
				injected = true
				cluster.InjectFault(1, 3, nil)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	// First transient fault: fires inside the very first epoch's launch.
	cluster.InjectFault(-1, 5, nil)

	res, err := sess.Run(context.Background(), epochs)
	if err != nil {
		t.Fatalf("recovering run failed: %v", err)
	}
	if !injected {
		t.Fatal("mid-run fault was never injected")
	}
	if len(res.History) != epochs {
		t.Fatalf("recovered run has %d epochs, want %d", len(res.History), epochs)
	}
	for i, e := range res.History {
		if e.Epoch != i {
			t.Fatalf("history entry %d numbered %d (replayed epochs not trimmed?)", i, e.Epoch)
		}
		if e.Loss != baseline.History[i].Loss {
			t.Fatalf("epoch %d: recovered loss %v != fault-free %v", i, e.Loss, baseline.History[i].Loss)
		}
		if e.TrainAcc != baseline.History[i].TrainAcc {
			t.Fatalf("epoch %d: recovered acc %v != fault-free %v", i, e.TrainAcc, baseline.History[i].TrainAcc)
		}
	}
	if res.FinalLoss != baseline.FinalLoss {
		t.Fatalf("final loss %v != fault-free %v", res.FinalLoss, baseline.FinalLoss)
	}
}

// TestSessionFaultWithoutRecoverySurfacesTypedError checks the default
// (no-recovery) contract: an injected fault makes Run return the typed
// *comm.RankError, the session refuses to step on inconsistent state, and a
// checkpoint restore makes it trainable again.
func TestSessionFaultWithoutRecoverySurfacesTypedError(t *testing.T) {
	ds := MustLoadDataset(ProteinSim, 42, 64)
	cluster, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cluster.Distribute(ds, DistOpts{Algorithm: SparsityAware1D})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dg.NewSession(ModelConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ck := sess.Snapshot()

	cluster.InjectFault(2, 4, nil)
	res, err := sess.Run(context.Background(), 3)
	var re *comm.RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *comm.RankError, got %T: %v", err, err)
	}
	if !errors.Is(err, comm.ErrInjectedFault) {
		t.Fatalf("unexpected cause: %v", err)
	}
	if re.Rank != 2 {
		t.Fatalf("fault attributed to rank %d, want 2", re.Rank)
	}
	if len(res.History) != 0 {
		t.Fatalf("faulted run reported %d epochs", len(res.History))
	}

	// The aborted epoch left per-rank replicas mid-update: stepping without a
	// restore must be refused rather than silently diverging.
	if _, err := sess.Step(); !errors.Is(err, gcn.ErrInconsistent) {
		t.Fatalf("step on inconsistent state: want ErrInconsistent, got %v", err)
	}

	// A restore heals the session; the retrained losses match a clean run.
	if err := sess.Restore(ck); err != nil {
		t.Fatal(err)
	}
	clean, _ := trainSessionPath(t, ds, 4, SparsityAware1D, nil, 3, 7)
	res2, err := sess.Run(context.Background(), 3)
	if err != nil {
		t.Fatalf("run after restore: %v", err)
	}
	for i := range res2.History {
		if res2.History[i].Loss != clean.History[i].Loss {
			t.Fatalf("epoch %d: post-restore loss %v != clean %v", i, res2.History[i].Loss, clean.History[i].Loss)
		}
	}
}

// TestRunCancelMidEpochAbortsPlan cancels a long run from outside while an
// epoch is in flight: the cancellation must propagate into the running Plan
// (unblocking every rank mid-collective), Run must return promptly with
// ctx.Err(), and the session must remain usable afterwards.
func TestRunCancelMidEpochAbortsPlan(t *testing.T) {
	ds := MustLoadDataset(ProteinSim, 42, 64)
	cluster, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cluster.Distribute(ds, DistOpts{Algorithm: SparsityAware1D})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dg.NewSession(ModelConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res *TrainResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := sess.Run(ctx, 100000)
		done <- outcome{res, err}
	}()
	time.Sleep(30 * time.Millisecond) // land inside an epoch, not at a boundary
	cancel()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return within 10s of cancellation — epoch not aborted")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", out.err)
	}
	for i, e := range out.res.History {
		if e.Epoch != i {
			t.Fatalf("partial history entry %d numbered %d", i, e.Epoch)
		}
	}

	// The mid-epoch abort rolled back to the last completed launch: the
	// session is clean and training resumes from there without a manual
	// restore.
	resumeFrom := sess.Epoch()
	if resumeFrom != len(out.res.History) {
		t.Fatalf("session at epoch %d but run reported %d epochs", resumeFrom, len(out.res.History))
	}
	step, err := sess.Step()
	if err != nil {
		t.Fatalf("step after cancelled run: %v", err)
	}
	if step.Epoch != resumeFrom {
		t.Fatalf("resumed at epoch %d, want %d", step.Epoch, resumeFrom)
	}
}
