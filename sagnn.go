// Package sagnn is a Go reproduction of "Sparsity-Aware Communication for
// Distributed Graph Neural Network Training" (Mukhodopadhyay, Tripathy,
// Selvitopi, Yelick, Buluç — ICPP 2024).
//
// It provides full-batch distributed GCN training over four distributed
// SpMM algorithms (sparsity-oblivious and sparsity-aware, 1D and 1.5D),
// graph partitioners including a volume-balancing GVB emulation, synthetic
// stand-ins for the paper's datasets, and a simulated multi-rank runtime
// that measures exact communication volumes and models epoch time with the
// paper's α–β machine model.
//
// Quick start:
//
//	ds := sagnn.MustLoadDataset(sagnn.ProteinSim, 42, 8)
//	res := sagnn.Train(sagnn.TrainConfig{
//		Dataset:     ds,
//		Processes:   16,
//		Algorithm:   sagnn.SparsityAware1D,
//		Partitioner: sagnn.NewGVB(42),
//		Epochs:      20,
//	})
//	fmt.Printf("loss=%.4f modeled epoch=%.4fs\n", res.FinalLoss, res.EpochSeconds)
package sagnn

import (
	"fmt"

	"sagnn/internal/comm"
	"sagnn/internal/distmm"
	"sagnn/internal/gcn"
	"sagnn/internal/gen"
	"sagnn/internal/machine"
	"sagnn/internal/partition"
)

// Dataset aliases the internal dataset bundle (graph, features, labels,
// splits).
type Dataset = gen.Dataset

// Preset names one of the built-in dataset stand-ins.
type Preset = gen.Preset

// Dataset presets mirroring the paper's Table 3 (scaled; see DESIGN.md).
const (
	RedditSim  = gen.RedditSim
	AmazonSim  = gen.AmazonSim
	ProteinSim = gen.ProteinSim
	PapersSim  = gen.PapersSim
)

// LoadDataset materialises a preset. scaleDiv ≥ 1 divides the vertex count
// by that (power-of-two) factor; 1 is the full benchmark size.
func LoadDataset(p Preset, seed int64, scaleDiv int) (*Dataset, error) {
	return gen.Load(p, seed, scaleDiv)
}

// MustLoadDataset is LoadDataset that panics on error.
func MustLoadDataset(p Preset, seed int64, scaleDiv int) *Dataset {
	return gen.MustLoad(p, seed, scaleDiv)
}

// Partitioner computes a k-way vertex partition; see NewMetis, NewGVB,
// NewRandom, NewBlock.
type Partitioner = partition.Partitioner

// NewBlock returns the contiguous block partitioner (no reordering).
func NewBlock() Partitioner { return partition.Block{} }

// NewRandom returns the random balanced partitioner.
func NewRandom(seed int64) Partitioner { return partition.Random{Seed: seed} }

// NewMetis returns the multilevel edgecut partitioner (METIS-style
// objective: total cut only).
func NewMetis(seed int64) Partitioner { return partition.MetisLike{Seed: seed} }

// NewGVB returns the volume-balancing multilevel partitioner (Graph-VB
// style objective: max send volume, then total volume).
func NewGVB(seed int64) Partitioner { return partition.GVB{Seed: seed} }

// Algorithm selects a distributed SpMM algorithm.
type Algorithm string

// The four algorithms of the paper.
const (
	Oblivious1D      Algorithm = "oblivious-1d"
	SparsityAware1D  Algorithm = "sparsity-aware-1d"
	Oblivious15D     Algorithm = "oblivious-1.5d"
	SparsityAware15D Algorithm = "sparsity-aware-1.5d"
)

// TrainConfig configures a distributed training run.
type TrainConfig struct {
	Dataset   *Dataset
	Processes int
	// Replication is the 1.5D replication factor c (ignored by 1D
	// algorithms; must satisfy c | P and c² | P·... see distmm.NewGrid).
	Replication int
	Algorithm   Algorithm
	// Partitioner, if non-nil, reorders the graph before distribution.
	Partitioner Partitioner
	Epochs      int
	Hidden      int
	Layers      int
	LR          float64
	Seed        int64
	// SAGE switches the layer operation from the paper's GCN convolution
	// to a GraphSAGE-style concat layer — same communication pattern,
	// demonstrating that the sparsity-aware methods generalize to other
	// GNN types (Section 2 of the paper).
	SAGE bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TrainResult reports a finished run.
type TrainResult struct {
	// History is the per-epoch loss/accuracy trajectory.
	History []gcn.EpochResult
	// FinalLoss and FinalTrainAcc summarise the last epoch.
	FinalLoss     float64
	FinalTrainAcc float64
	// EpochSeconds is the modeled per-epoch time on the paper's machine
	// (A100 + Slingshot α–β model), max-over-ranks per phase.
	EpochSeconds float64
	// Breakdown splits EpochSeconds into phases: "bcast", "alltoall",
	// "allreduce", "local".
	Breakdown map[string]float64
	// MaxSentMB / AvgSentMB are measured per-process send volumes per epoch.
	MaxSentMB float64
	AvgSentMB float64
	// ValAcc / TestAcc evaluate the trained model on the dataset's held-out
	// splits (full-batch inference).
	ValAcc  float64
	TestAcc float64
	// PartitionQuality describes the partition when a Partitioner ran.
	PartitionQuality *partition.Quality
}

// Train runs distributed full-batch GCN training under the given
// configuration and returns the trajectory plus modeled performance.
func Train(cfg TrainConfig) TrainResult {
	cfg = cfg.withDefaults()
	ds := cfg.Dataset
	if ds == nil {
		panic("sagnn: TrainConfig.Dataset is nil")
	}
	p, c := cfg.Processes, cfg.Replication
	if p <= 0 {
		panic(fmt.Sprintf("sagnn: %d processes", p))
	}
	k := p / c

	aHat := ds.G.NormalizedAdjacency()
	x, labels := ds.Features, ds.Labels
	train, val, test := ds.Train, ds.Val, ds.Test
	var layout distmm.Layout
	var quality *partition.Quality
	if cfg.Partitioner != nil {
		part := cfg.Partitioner.Partition(ds.G, k)
		q := partition.Evaluate(cfg.Partitioner.Name(), ds.G, part)
		quality = &q
		perm := part.Perm()
		aHat = aHat.PermuteSymmetric(perm)
		var sets [][]int
		x, labels, sets = gcn.ApplyPerm(perm, x, labels, train, val, test)
		train, val, test = sets[0], sets[1], sets[2]
		layout = distmm.LayoutFromOffsets(part.Offsets())
	} else {
		layout = distmm.UniformLayout(ds.G.NumVertices(), k)
	}

	world := comm.NewWorld(p, machine.Perlmutter())
	var engine distmm.Engine
	switch cfg.Algorithm {
	case Oblivious1D:
		engine = distmm.NewOblivious1D(world, aHat, layout)
	case SparsityAware1D:
		engine = distmm.NewSparsityAware1D(world, aHat, layout)
	case Oblivious15D:
		engine = distmm.NewOblivious15D(world, aHat, c, layout)
	case SparsityAware15D:
		engine = distmm.NewSparsityAware15D(world, aHat, c, layout)
	default:
		panic(fmt.Sprintf("sagnn: unknown algorithm %q", cfg.Algorithm))
	}

	dims := gcn.LayerDims(x.Cols, cfg.Hidden, ds.Classes, cfg.Layers)
	trainer := gcn.NewDistributed(world, engine, x, labels, train, dims, cfg.LR, cfg.Seed)
	if cfg.SAGE {
		trainer.Variant = gcn.SAGEConv
	}
	history := trainer.TrainEpochs(cfg.Epochs)

	world.Ledger.Scale(1 / float64(cfg.Epochs))
	last := history[len(history)-1]
	const mb = 1e6
	res := TrainResult{
		History:          history,
		FinalLoss:        last.Loss,
		FinalTrainAcc:    last.TrainAcc,
		EpochSeconds:     world.Ledger.Total(),
		Breakdown:        world.Ledger.Breakdown(),
		MaxSentMB:        float64(world.Stats().MaxSent()) / float64(cfg.Epochs) / mb,
		AvgSentMB:        world.Stats().AvgSent() / float64(cfg.Epochs) / mb,
		PartitionQuality: quality,
	}
	// Evaluate the trained weights on the held-out splits with full-batch
	// inference (every replica holds the same model; rank 0's copy is used).
	if trainer.FinalModel != nil {
		eval := gcn.NewSerial(aHat, x, labels, train, trainer.FinalModel, cfg.LR)
		eval.Variant = trainer.Variant
		res.ValAcc = eval.Accuracy(val)
		res.TestAcc = eval.Accuracy(test)
	}
	return res
}

// TrainSerial runs the single-process reference trainer on a dataset —
// the ground truth for accuracy comparisons and the quickest way to try
// the library.
func TrainSerial(ds *Dataset, epochs, hidden, layers int, lr float64, seed int64) []gcn.EpochResult {
	aHat := ds.G.NormalizedAdjacency()
	dims := gcn.LayerDims(ds.FeatureDim(), hidden, ds.Classes, layers)
	s := gcn.NewSerial(aHat, ds.Features, ds.Labels, ds.Train, gcn.NewModel(seed, dims), lr)
	return s.TrainEpochs(epochs)
}

// EvaluatePartitioners compares partition quality (edgecut, total and max
// send volume, balance) of the four partitioners on a dataset at k parts.
func EvaluatePartitioners(ds *Dataset, k int, seed int64) []partition.Quality {
	pts := []Partitioner{
		partition.Block{},
		partition.Random{Seed: seed},
		partition.MetisLike{Seed: seed},
		partition.GVB{Seed: seed},
	}
	out := make([]partition.Quality, 0, len(pts))
	for _, pt := range pts {
		p := pt.Partition(ds.G, k)
		out = append(out, partition.Evaluate(pt.Name(), ds.G, p))
	}
	return out
}
