// Package sagnn is a Go reproduction of "Sparsity-Aware Communication for
// Distributed Graph Neural Network Training" (Mukhodopadhyay, Tripathy,
// Selvitopi, Yelick, Buluç — ICPP 2024).
//
// It provides full-batch distributed GCN training over four distributed
// SpMM algorithms (sparsity-oblivious and sparsity-aware, 1D and 1.5D),
// graph partitioners including a volume-balancing GVB emulation, synthetic
// stand-ins for the paper's datasets, and a simulated multi-rank runtime
// that measures exact communication volumes and models epoch time with the
// paper's α–β machine model.
//
// The composable API separates the expensive, amortizable setup from the
// per-epoch work and from serving, mirroring the paper's observation that
// partitioning and sparsity-aware communication schedules pay off across
// many epochs:
//
//	cluster, _ := sagnn.NewCluster(16)
//	dg, _ := cluster.Distribute(ds, sagnn.DistOpts{
//		Algorithm:   sagnn.SparsityAware1D,
//		Partitioner: sagnn.NewGVB(42),
//	})
//	sess, _ := dg.NewSession(sagnn.ModelConfig{Seed: 7})
//	res, _ := sess.Run(ctx, 20)           // or sess.Step() epoch by epoch
//	pred := sess.Predictor()              // serve from the trained weights
//	classes, _ := pred.Predict([]int{0, 1, 2})
//
// One Distribute (partition + engine build) can back any number of
// sessions; sessions expose Step, epoch callbacks, context cancellation,
// and Snapshot/Restore checkpointing. The legacy one-shot Train entry
// point remains as a compatibility wrapper over the same path.
//
// On the serving side, the same sparsity-aware discipline answers online
// queries: Model.PredictSubset and ProbabilitiesSubsetInto compute a
// request's probabilities by gathering only its L-hop receptive field,
// bit-identical to full-batch Predict, and internal/serve + cmd/serve wrap
// that path in a micro-batching, cache-fronted, hot-swappable HTTP server.
package sagnn

import (
	"context"
	"fmt"

	"sagnn/internal/distmm"
	"sagnn/internal/gcn"
	"sagnn/internal/gen"
	"sagnn/internal/partition"
)

// Dataset aliases the internal dataset bundle (graph, features, labels,
// splits).
type Dataset = gen.Dataset

// Preset names one of the built-in dataset stand-ins.
type Preset = gen.Preset

// Dataset presets mirroring the paper's Table 3 (scaled; see DESIGN.md).
const (
	RedditSim  = gen.RedditSim
	AmazonSim  = gen.AmazonSim
	ProteinSim = gen.ProteinSim
	PapersSim  = gen.PapersSim
)

// LoadDataset materialises a preset. scaleDiv ≥ 1 divides the vertex count
// by that (power-of-two) factor; 1 is the full benchmark size.
func LoadDataset(p Preset, seed int64, scaleDiv int) (*Dataset, error) {
	return gen.Load(p, seed, scaleDiv)
}

// MustLoadDataset is LoadDataset that panics on error.
func MustLoadDataset(p Preset, seed int64, scaleDiv int) *Dataset {
	return gen.MustLoad(p, seed, scaleDiv)
}

// Partitioner computes a k-way vertex partition; see NewMetis, NewGVB,
// NewRandom, NewBlock.
type Partitioner = partition.Partitioner

// NewBlock returns the contiguous block partitioner (no reordering).
func NewBlock() Partitioner { return partition.Block{} }

// NewRandom returns the random balanced partitioner.
func NewRandom(seed int64) Partitioner { return partition.Random{Seed: seed} }

// NewMetis returns the multilevel edgecut partitioner (METIS-style
// objective: total cut only).
func NewMetis(seed int64) Partitioner { return partition.MetisLike{Seed: seed} }

// NewGVB returns the volume-balancing multilevel partitioner (Graph-VB
// style objective: max send volume, then total volume).
func NewGVB(seed int64) Partitioner { return partition.GVB{Seed: seed} }

// Algorithm selects a distributed SpMM algorithm.
type Algorithm string

// The four algorithms of the paper.
const (
	Oblivious1D      Algorithm = "oblivious-1d"
	SparsityAware1D  Algorithm = "sparsity-aware-1d"
	Oblivious15D     Algorithm = "oblivious-1.5d"
	SparsityAware15D Algorithm = "sparsity-aware-1.5d"
)

// AlgorithmAuto asks Distribute to choose for you: it compiles candidate
// communication plans (1D and 1.5D, oblivious and sparsity-aware, over the
// replication factors the process count allows), prices each one with the
// cluster's α–β machine model — no data moves — and selects the minimum
// modeled epoch cost. The decision and the full per-candidate table are
// recorded in DistGraph.Report; Cluster.Estimate returns the same table
// without building a DistGraph.
const AlgorithmAuto Algorithm = "auto"

// The 2D SUMMA-grid kernels. They are standalone SpMM engines (CAGNET found
// 2D less performant than 1D/1.5D for GNN training, so they are not wired
// into the trainer), but Cluster.Estimate prices them alongside the
// trainable algorithms when the process count is a perfect square.
const (
	Oblivious2D     Algorithm = "oblivious-2d"
	SparsityAware2D Algorithm = "sparsity-aware-2d"
)

// ExecMode selects how the distributed SpMM engine executes its compiled
// communication plan; see DistOpts.Exec.
type ExecMode = distmm.ExecMode

const (
	// ExecSequential runs each plan stage to completion before the SpMM that
	// consumes it — the bulk-synchronous default.
	ExecSequential = distmm.ExecSequential
	// ExecOverlap pipelines the plan: the next stage's communication is in
	// flight while the current stage's SpMM runs (CAGNET-style
	// comm/compute overlap), joined at the plan's true data dependencies.
	// Training results are bit-identical to ExecSequential — the compute
	// operations run in the same order on the same staged rows — and the
	// traffic is byte-identical; only the modeled epoch time changes, to
	// max(comm, compute) per pipelined stage instead of their sum.
	ExecOverlap = distmm.ExecOverlap
)

// TrainConfig configures a one-shot distributed training run via the
// legacy Train wrapper. New code should use NewCluster / Distribute /
// NewSession, which separate the amortizable setup from training.
type TrainConfig struct {
	Dataset   *Dataset
	Processes int
	// Replication is the 1.5D replication factor c (ignored by 1D
	// algorithms; must satisfy c | P and c² | P·... see distmm.NewGrid).
	Replication int
	Algorithm   Algorithm
	// Partitioner, if non-nil, reorders the graph before distribution.
	Partitioner Partitioner
	Epochs      int
	Hidden      int
	Layers      int
	LR          float64
	Seed        int64
	// SAGE switches the layer operation from the paper's GCN convolution
	// to a GraphSAGE-style concat layer — same communication pattern,
	// demonstrating that the sparsity-aware methods generalize to other
	// GNN types (Section 2 of the paper).
	SAGE bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TrainResult reports a finished run.
type TrainResult struct {
	// History is the per-epoch loss/accuracy trajectory.
	History []gcn.EpochResult
	// FinalLoss and FinalTrainAcc summarise the last epoch.
	FinalLoss     float64
	FinalTrainAcc float64
	// EpochSeconds is the modeled per-epoch time on the paper's machine
	// (A100 + Slingshot α–β model), max-over-ranks per phase.
	EpochSeconds float64
	// Breakdown splits EpochSeconds into phases: "bcast", "alltoall",
	// "allreduce", "local".
	Breakdown map[string]float64
	// MaxSentMB / AvgSentMB are measured per-process send volumes per epoch.
	MaxSentMB float64
	AvgSentMB float64
	// ValAcc / TestAcc evaluate the trained model on the dataset's held-out
	// splits (full-batch inference).
	ValAcc  float64
	TestAcc float64
	// PartitionQuality describes the partition when a Partitioner ran.
	PartitionQuality *partition.Quality
	// Model is the trained weight set, detached from the run: evaluate it,
	// serve it through a Predictor, or persist it with MarshalBinary.
	Model *Model
}

// Train runs distributed full-batch GCN training under the given
// configuration and returns the trajectory plus modeled performance. It is
// a compatibility wrapper over the composable API (NewCluster → Distribute
// → NewSession → Run) that rebuilds the cluster, partition, and
// communication schedule on every call and panics on invalid configuration.
//
// Deprecated: new code should use the composable API directly, which
// amortises the setup across runs and returns errors instead of panicking.
func Train(cfg TrainConfig) TrainResult {
	res, err := trainViaSession(cfg)
	if err != nil {
		panic(err.Error())
	}
	return *res
}

// trainViaSession is the one code path behind the legacy wrapper: every
// Train call is exactly a build-once/train-once session run.
func trainViaSession(cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("sagnn: TrainConfig.Dataset is nil")
	}
	cluster, err := NewCluster(cfg.Processes)
	if err != nil {
		return nil, err
	}
	dg, err := cluster.Distribute(cfg.Dataset, DistOpts{
		Algorithm:   cfg.Algorithm,
		Replication: cfg.Replication,
		Partitioner: cfg.Partitioner,
	})
	if err != nil {
		return nil, err
	}
	sess, err := dg.NewSession(ModelConfig{
		Hidden: cfg.Hidden,
		Layers: cfg.Layers,
		LR:     cfg.LR,
		Seed:   cfg.Seed,
		SAGE:   cfg.SAGE,
	})
	if err != nil {
		return nil, err
	}
	return sess.Run(context.Background(), cfg.Epochs)
}

// TrainSerial runs the single-process reference trainer on a dataset —
// the ground truth for accuracy comparisons and the quickest way to try
// the library.
//
// Deprecated: use RunSerial, which validates inputs, returns errors, and
// exposes the trained model. Note: zero-valued hidden/layers/lr/seed now
// select the documented ModelConfig defaults (16/3/0.05/1) instead of
// being passed through literally.
func TrainSerial(ds *Dataset, epochs, hidden, layers int, lr float64, seed int64) []gcn.EpochResult {
	res, err := RunSerial(ds, epochs, ModelConfig{Hidden: hidden, Layers: layers, LR: lr, Seed: seed})
	if err != nil {
		panic(err.Error())
	}
	return res.History
}

// EvaluatePartitioners compares partition quality (edgecut, total and max
// send volume, balance) of the four partitioners on a dataset at k parts.
func EvaluatePartitioners(ds *Dataset, k int, seed int64) []partition.Quality {
	pts := []Partitioner{
		partition.Block{},
		partition.Random{Seed: seed},
		partition.MetisLike{Seed: seed},
		partition.GVB{Seed: seed},
	}
	out := make([]partition.Quality, 0, len(pts))
	for _, pt := range pts {
		p := pt.Partition(ds.G, k)
		out = append(out, partition.Evaluate(pt.Name(), ds.G, p))
	}
	return out
}
